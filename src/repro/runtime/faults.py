"""Deterministic fault injection for the socket runtime.

A :class:`FaultPlan` is a *manifest-carried*, seeded description of the
failures a run must survive (or die of, for the failure-path tests).
Carrying the plan in the manifest -- inside the handshake digest, like
every other run parameter -- means every process interprets the same
plan, so chaos runs are exactly as reproducible as fault-free runs: the
same manifest produces the same kills at the same protocol points, and
the recovery machinery can be property-tested against the bit-identical
equivalence bar.

Spec grammar (the CLI's ``--fault`` strings)::

    kill:<party>@pass<N>              die hard at the boundary where N
                                      passes have completed
    kill:<party>@pass<N>.q<Q>         die mid-pass: N passes completed,
                                      after seeing Q queries of the
                                      in-flight pass
    drop:<party>:<a>-<b>@pass<N>      abruptly close the pair's socket
                                      (no goodbye) at boundary N; both
                                      ends recover in-process
    drop:<party>:<a>-<b>@pass<N>.q<Q> the same, mid-pass
    delay:<party>:<a>-<b>@pass<N>.f<F>:<seconds>
                                      sleep before writing the F-th
                                      protocol frame after boundary N
    truncate:<party>:<a>-<b>@pass<N>.f<F>
                                      write a seeded-length prefix of
                                      the F-th protocol frame after
                                      boundary N, then hard-close (the
                                      peer sees the stream end
                                      mid-frame)
    refuse:<party>:<a>-<b>            the listening party closes the
                                      first accepted connection before
                                      handshaking (the dialer re-dials)

Any spec may end with ``@e<E>``: it fires only at recovery epoch ``E``
(default 0) -- which is what makes kill faults terminate: the re-spawned
party runs at the next epoch, where the spec no longer matches.  Every
fault fires at most once per process lifetime.
"""

from __future__ import annotations

import os
import re
import socket
import time
from dataclasses import dataclass, replace

from repro.net.framing import (
    FRAME_MESSAGE,
    ConnectionClosedError,
    FramedConnection,
    encode_frame,
)
from repro.net.transport import canonical_pair, derive_seeded_stream

#: Exit code of an injected hard death (``os._exit``); the orchestrator
#: classifies it as a retryable crash, exactly like a real one.
FAULT_EXIT_CODE = 13

_KINDS = ("kill", "drop", "delay", "truncate", "refuse")
_PAIR_KINDS = ("drop", "delay", "truncate", "refuse")

_AT_RE = re.compile(
    r"^pass(?P<boundary>\d+)"
    r"(?:\.q(?P<queries>\d+)|\.f(?P<frame>\d+)(?::(?P<seconds>[\d.]+))?)?$")


class FaultSpecError(ValueError):
    """Malformed fault spec string or serialized record."""


@dataclass(frozen=True)
class FaultSpec:
    """One planned failure.

    ``boundary`` is a completed-pass count: a boundary fault fires the
    moment ``passes_done == boundary``; a mid-pass fault (``queries``
    set) fires during the following pass, after that many of its
    queries; a frame fault (``frame`` set) fires on that protocol frame
    written after the boundary.  ``refuse`` faults have no boundary --
    they act during link-up at their epoch.
    """

    kind: str
    party: str
    pair: tuple[str, str] | None = None
    boundary: int | None = None
    queries: int | None = None
    frame: int | None = None
    seconds: float | None = None
    epoch: int = 0
    seed: int = 0

    def __post_init__(self):
        if self.kind not in _KINDS:
            raise FaultSpecError(f"unknown fault kind {self.kind!r}")
        if self.kind in _PAIR_KINDS and self.pair is None:
            raise FaultSpecError(f"{self.kind} faults need a pair")
        if self.kind == "kill" and self.pair is not None:
            raise FaultSpecError("kill faults take no pair")
        if self.kind == "refuse":
            if self.boundary is not None:
                raise FaultSpecError("refuse faults act at link-up, "
                                     "not at a pass boundary")
        elif self.boundary is None:
            raise FaultSpecError(f"{self.kind} faults need @pass<N>")
        if self.kind in ("delay", "truncate") and self.frame is None:
            raise FaultSpecError(f"{self.kind} faults need .f<F>")
        if self.kind == "delay" and self.seconds is None:
            raise FaultSpecError("delay faults need :<seconds>")
        if self.kind in ("kill", "drop") and self.frame is not None:
            raise FaultSpecError(f"{self.kind} faults take no .f<F>")

    def pair_key(self) -> str | None:
        return "|".join(self.pair) if self.pair else None

    def to_dict(self) -> dict:
        record = {"kind": self.kind, "party": self.party,
                  "epoch": self.epoch, "seed": self.seed}
        if self.pair is not None:
            record["pair"] = list(self.pair)
        for name in ("boundary", "queries", "frame", "seconds"):
            value = getattr(self, name)
            if value is not None:
                record[name] = value
        return record

    @classmethod
    def from_dict(cls, record: dict) -> "FaultSpec":
        try:
            pair = record.get("pair")
            return cls(kind=record["kind"], party=record["party"],
                       pair=tuple(pair) if pair else None,
                       boundary=record.get("boundary"),
                       queries=record.get("queries"),
                       frame=record.get("frame"),
                       seconds=record.get("seconds"),
                       epoch=record.get("epoch", 0),
                       seed=record.get("seed", 0))
        except KeyError as exc:
            raise FaultSpecError(
                f"fault record missing field {exc}") from exc


def parse_fault(text: str, *, seed: int = 0) -> FaultSpec:
    """Parse one ``--fault`` spec string (grammar in the module doc)."""
    segments = text.strip().split("@")
    head = segments.pop(0)
    epoch = 0
    boundary = queries = frame = None
    seconds = None
    for segment in segments:
        if re.fullmatch(r"e\d+", segment):
            epoch = int(segment[1:])
            continue
        match = _AT_RE.match(segment)
        if match is None:
            raise FaultSpecError(
                f"bad fault location {segment!r} in {text!r} (expected "
                f"pass<N>[.q<Q>|.f<F>[:<seconds>]] or e<E>)")
        boundary = int(match.group("boundary"))
        if match.group("queries") is not None:
            queries = int(match.group("queries"))
        if match.group("frame") is not None:
            frame = int(match.group("frame"))
        if match.group("seconds") is not None:
            seconds = float(match.group("seconds"))
    parts = head.split(":")
    kind = parts[0]
    if kind not in _KINDS:
        raise FaultSpecError(f"unknown fault kind {kind!r} in {text!r}")
    if kind == "kill":
        if len(parts) != 2:
            raise FaultSpecError(f"kill spec is kill:<party>, got {text!r}")
        pair = None
    else:
        if len(parts) != 3 or "-" not in parts[2]:
            raise FaultSpecError(
                f"{kind} spec is {kind}:<party>:<a>-<b>, got {text!r}")
        left, _, right = parts[2].partition("-")
        pair = canonical_pair(left, right)
    try:
        return FaultSpec(kind=kind, party=parts[1], pair=pair,
                         boundary=boundary, queries=queries, frame=frame,
                         seconds=seconds, epoch=epoch, seed=seed)
    except FaultSpecError as exc:
        raise FaultSpecError(f"{text!r}: {exc}") from exc


@dataclass(frozen=True)
class FaultPlan:
    """All planned faults of a run, plus the seed of their coin stream."""

    specs: tuple[FaultSpec, ...] = ()
    seed: int = 0

    @classmethod
    def parse(cls, texts, *, seed: int = 0) -> "FaultPlan":
        return cls(specs=tuple(parse_fault(text, seed=seed)
                               for text in texts), seed=seed)

    def to_dicts(self) -> tuple[dict, ...]:
        return tuple(replace(spec, seed=self.seed).to_dict()
                     for spec in self.specs)

    @classmethod
    def from_dicts(cls, records) -> "FaultPlan":
        specs = tuple(FaultSpec.from_dict(record) for record in records)
        return cls(specs=specs, seed=specs[0].seed if specs else 0)

    def for_party(self, party: str, epoch: int) -> "PartyFaults":
        return PartyFaults(
            [spec for spec in self.specs
             if spec.party == party and spec.epoch == epoch],
            party=party, seed=self.seed)


class PartyFaults:
    """One process's live view of the plan at its current epoch.

    The party program consults :meth:`at_boundary` after every
    checkpoint and :meth:`on_query` per announced/served query; frame
    faults act inside :class:`FaultyConnection`.  Each spec fires at
    most once (``_fired``), and the whole object is rebuilt per epoch,
    so a recovered process only sees specs addressed to its new epoch.
    """

    def __init__(self, specs, *, party: str, seed: int = 0):
        self.specs = list(specs)
        self.party = party
        self.seed = seed
        self._fired: set[int] = set()

    def _take(self, predicate) -> list[FaultSpec]:
        taken = []
        for index, spec in enumerate(self.specs):
            if index not in self._fired and predicate(spec):
                self._fired.add(index)
                taken.append(spec)
        return taken

    def at_boundary(self, passes_done: int) -> list[FaultSpec]:
        return self._take(
            lambda s: s.kind in ("kill", "drop") and s.queries is None
            and s.boundary == passes_done)

    def on_query(self, passes_done: int,
                 queries_in_pass: int) -> list[FaultSpec]:
        return self._take(
            lambda s: s.kind in ("kill", "drop") and s.queries is not None
            and s.boundary == passes_done and s.queries == queries_in_pass)

    def refuse_once(self, pair_key: str) -> bool:
        """True exactly once per matching refuse spec for this pair."""
        return bool(self._take(
            lambda s: s.kind == "refuse" and s.pair_key() == pair_key))

    def frame_specs(self, pair_key: str) -> list[FaultSpec]:
        return [spec for spec in self.specs
                if spec.kind in ("delay", "truncate")
                and spec.pair_key() == pair_key]

    @staticmethod
    def die(spec: FaultSpec, context: str) -> None:
        """The injected hard death: no goodbye, no cleanup, no report --
        exactly the shape of a real crash."""
        print(f"[fault injection] {spec.party} dying ({spec.kind} "
              f"{context})", flush=True)
        os._exit(FAULT_EXIT_CODE)


class FaultyConnection(FramedConnection):
    """A :class:`FramedConnection` that interprets frame-level faults.

    ``state`` is a zero-argument callback returning the party's current
    ``passes_done`` (frame counts reset at each boundary, so ``.f<F>``
    means "the F-th protocol frame after that checkpoint").  Delay
    faults sleep before the write; truncate faults send a seeded-length
    prefix of the encoded frame, hard-close the socket -- the peer sees
    the stream end mid-frame, this side sees its next operation fail --
    and never deliver the rest.
    """

    def __init__(self, sock, *, specs, state, timeout_s: float,
                 name: str = "link", authenticator=None):
        super().__init__(sock, timeout_s=timeout_s, name=name,
                         authenticator=authenticator)
        self._specs = list(specs)
        self._state = state
        self._frames_since_boundary = 0
        self._boundary_seen = -1
        self._spent: set[int] = set()

    def write_frame(self, kind: bytes, payload: bytes = b"") -> None:
        if kind != FRAME_MESSAGE or not self._specs:
            return super().write_frame(kind, payload)
        passes_done = self._state()
        if passes_done != self._boundary_seen:
            self._boundary_seen = passes_done
            self._frames_since_boundary = 0
        self._frames_since_boundary += 1
        for index, spec in enumerate(self._specs):
            if (index in self._spent or spec.boundary != passes_done
                    or spec.frame != self._frames_since_boundary):
                continue
            self._spent.add(index)
            if spec.kind == "delay":
                time.sleep(spec.seconds)
            elif spec.kind == "truncate":
                self._truncate(spec, kind, payload)
        super().write_frame(kind, payload)

    def _truncate(self, spec: FaultSpec, kind: bytes,
                  payload: bytes) -> None:
        frame = encode_frame(kind, payload)
        rng = derive_seeded_stream(spec.seed, "fault-truncate", spec.party,
                                   spec.boundary, spec.frame)
        cut = rng.randrange(1, len(frame))
        with self._send_lock:
            self._closed = True
            try:
                self._sock.sendall(frame[:cut])
            except OSError:
                pass
            # No shutdown: the partial bytes must flush, then FIN -- the
            # peer reads a frame prefix and hits EOF mid-frame.
            try:
                self._sock.close()
            except OSError:
                pass
        raise ConnectionClosedError(
            f"{self.name}: [fault injection] frame truncated after "
            f"{cut}/{len(frame)} bytes")


def refuse_first_accept(listener: socket.socket, faults: PartyFaults,
                        pair_key: str) -> None:
    """Link-up hook: consume one ``refuse`` spec by accepting and
    immediately closing the next connection (the dialer retries)."""
    if not faults.refuse_once(pair_key):
        return
    try:
        victim, _ = listener.accept()
        victim.close()
        print(f"[fault injection] {faults.party} refused a connection "
              f"on pair {pair_key}", flush=True)
    except OSError:
        pass
