"""Message-granularity pass execution on the daemon event loop.

The daemon runtime used to burn one worker thread per session: the
session's driver pass ran the blocking mirrored choreography on a
dedicated thread, and each blocking ``collect`` parked that thread on a
future.  At 64 concurrent sessions that is 64 threads doing nothing but
waiting.  This module removes them: the *unchanged, synchronous*
choreographies run inline on the event loop, and the thing that parks
when a frame has not arrived yet is a **coroutine**, not a thread.

Restartable execution
---------------------

Python cannot suspend a plain synchronous call stack from underneath
(no continuations without C extensions), so the trick is the same one
the PR-6 checkpoint recovery uses, applied at message granularity:

1. A per-peer secure query runs inline.  Channel sends by the local
   party execute in full (serialize, record, deliver).  A *remote*
   send -- the substitution point where the threaded channel would
   block on the socket -- instead polls the per-(session, pair) frame
   queue; if the authentic frame has not arrived, the channel raises
   :class:`NeedFrame`.
2. The pair runtime catches it, rolls the pair's mutable state (party
   RNGs, randomness pools, comparison counter, cipher cache) back to
   the snapshot taken at query start, and ``await``\\ s the frame --
   yielding the event loop to every other session's coroutines.
3. When the frame arrives, the query re-executes *from its start*.
   The channel's frame log doubles as the replay record: frames the
   previous attempt already produced are byte-verified and suppressed
   (outbound) or served from the log (inbound), so the wire sees every
   frame exactly once and stats/transcripts record each frame exactly
   once, on its live execution.

Re-execution costs repeated local compute (bounded by the handful of
round-trips per query), and buys a daemon whose thread count is
independent of its session count.  Determinism makes it sound: a
restarted attempt with restored state re-produces byte-identical
frames, which the replay check enforces rather than assumes.
"""

from __future__ import annotations

from collections import deque
from typing import Callable

from repro.core.leakage import LeakageLedger
from repro.multiparty.horizontal import (
    _build_peer_queries,
    _merge_outcomes,
    _pass_program,
)
from repro.multiparty.scheduler import AsyncPassExecutor, PeerQuery
from repro.net.serialization import deserialize_message, serialize_message
from repro.net.transport import ProtocolDesyncError
from repro.obs.metrics import NULL_INSTRUMENT
from repro.obs.trace import NULL_SPAN
from repro.runtime.mirror import MirrorChannel, MirrorChannelError


class NeedFrame(Exception):
    """A remote-send substitution found the frame queue empty.

    Internal control flow of the restartable runner -- never escapes
    :meth:`PairRuntime.run`.  Carries the label the choreography is
    waiting for, for diagnostics and the awaited-frame message.
    """

    def __init__(self, label: str):
        super().__init__(label)
        self.label = label


class ReplayDivergenceError(ProtocolDesyncError):
    """A re-executed attempt produced different bytes than its log.

    Determinism is the soundness condition of restartable execution;
    this error means restored state did not reproduce the recorded
    wire view -- a bug, never a recoverable condition.
    """


class RestartableMirrorChannel(MirrorChannel):
    """A mirror channel whose remote-send substitution never blocks.

    Same mirrored-choreography semantics as :class:`MirrorChannel`
    (see its module docstring); the difference is confined to where
    the authentic frame comes from:

    - within the replayed prefix of the current query (``_cursor``
      below the frame-log high-water mark), outbound frames are
      byte-verified against the log and **not** re-delivered, inbound
      frames are served **from** the log -- stats and transcript are
      untouched, they recorded these frames on their live execution;
    - past the prefix, a local send runs the full live path, and a
      remote send polls the staged frame (delivered while the runner
      was parked) or the transport's non-blocking ``try_collect`` --
      raising :class:`NeedFrame` instead of blocking a thread.
    """

    #: Live-vs-replayed segment accounting (``repro_segment_frames``)
    #: -- the daemon rebinds these to real counters per pair; the class
    #: defaults keep non-instrumented channels at one no-op call.
    obs_live = NULL_INSTRUMENT
    obs_replayed = NULL_INSTRUMENT

    def __init__(self, left_name: str, right_name: str, local_name: str,
                 transport):
        super().__init__(left_name, right_name, local_name, transport)
        # Frames collected by the parked runner, to serve on the next
        # attempt's first live remote-send.
        self._staged: deque[tuple[str, bytes]] = deque()
        self._replay_base = 0
        self._cursor = 0
        self._inbox_snapshot: tuple[tuple, tuple] = ((), ())

    # -- restart protocol ---------------------------------------------------

    def begin_query(self) -> None:
        """Pin the replay base: frames logged before this point are
        settled history and never replayed."""
        self._replay_base = len(self.frame_log)
        self._inbox_snapshot = (tuple(self._local_echo),
                                tuple(self._remote_inbox))

    def begin_attempt(self) -> None:
        """Rewind to the query start: replay cursor to base, inboxes to
        their query-start contents (an aborted attempt leaves them
        mid-choreography)."""
        self._cursor = self._replay_base
        echo, inbox = self._inbox_snapshot
        self._local_echo.clear()
        self._local_echo.extend(echo)
        self._remote_inbox.clear()
        self._remote_inbox.extend(inbox)

    def stage(self, item: tuple[str, bytes]) -> None:
        """Hand the runner's awaited frame to the next attempt."""
        self._staged.append(item)

    # -- Channel protocol ---------------------------------------------------

    def _send(self, sender: str, receiver: str, label: str, value) -> None:
        if self._closed:
            raise MirrorChannelError("channel is closed")
        if self._cursor < len(self.frame_log):
            self._replay(sender, label, value)
            return
        if sender == self.local_name:
            super()._send(sender, receiver, label, value)
            self._cursor = len(self.frame_log)
            self.obs_live.inc()
            return
        # Live remote send: the staged frame (collected while parked)
        # first, then whatever the pump has queued; never block.
        if self._staged:
            authentic_label, wire = self._staged.popleft()
        else:
            item = self.transport.try_collect(self.local_name, label)
            if item is None:
                raise NeedFrame(label)
            authentic_label, wire = item
        if authentic_label != label:
            raise ProtocolDesyncError(
                f"cross-process desync on "
                f"{self.local_name!r}<->{self.remote_name!r}: this "
                f"choreography reached {sender}'s send of {label!r} but "
                f"the peer process sent {authentic_label!r}")
        self.stats.record(sender, receiver, label, len(wire))
        self.transcript.record(sender, receiver, label,
                               deserialize_message(wire), len(wire))
        self._remote_inbox.append((label, wire))
        self.frame_log.append(("in", label, wire))
        self._cursor = len(self.frame_log)
        self.obs_live.inc()

    def _replay(self, sender: str, label: str, value) -> None:
        direction, logged_label, logged_wire = self.frame_log[self._cursor]
        expected = "out" if sender == self.local_name else "in"
        if direction != expected or logged_label != label:
            raise ReplayDivergenceError(
                f"restart divergence on "
                f"{self.local_name!r}<->{self.remote_name!r}: attempt "
                f"reached {expected!r} {label!r} but the log recorded "
                f"{direction!r} {logged_label!r} at position "
                f"{self._cursor}")
        if sender == self.local_name:
            wire = serialize_message(value)
            if wire != logged_wire:
                raise ReplayDivergenceError(
                    f"restart divergence on "
                    f"{self.local_name!r}<->{self.remote_name!r}: "
                    f"re-executed send of {label!r} produced different "
                    f"bytes than the delivered frame "
                    f"({len(wire)} vs {len(logged_wire)} bytes)")
            # Already on the wire and in stats/transcript; only the
            # local echo must re-exist for the choreographed receive.
            self._local_echo.append((label, wire))
        else:
            self._remote_inbox.append((label, logged_wire))
        self._cursor += 1
        self.obs_replayed.inc()


class PairRuntime:
    """Restartable executor for one (session, pair)'s choreography.

    Owns the snapshot/restore of everything a re-executed attempt
    mutates: both parties' RNG states, every randomness pool (factors,
    counters, and the pool's forked RNG), the comparison backend's
    invocation counter, and the peer cipher cache.  Restoration is
    total -- even a background pool deposit that landed mid-attempt is
    rolled back with the pool RNG, so re-generation stays consistent.
    """

    #: Restart/parked accounting; the daemon rebinds these to its
    #: registry's instruments, non-instrumented runtimes stay no-op.
    obs_restarts = NULL_INSTRUMENT
    obs_parked = NULL_INSTRUMENT

    def __init__(self, channel: RestartableMirrorChannel, link,
                 lease=None):
        self.channel = channel
        self.link = link
        self.lease = lease
        self.session = None
        self.cache = None
        self.restarts = 0

    def _capture(self):
        session = self.session
        if session is None:
            return None
        pools = {}
        for key, pool in session._pools.items():
            pools[key] = (tuple(pool._factors), pool.pregenerated,
                          pool.consumed, pool.misses, pool.rng.getstate())
        return {
            "rngs": {name: session.party(name).rng.getstate()
                     for name in (session.alice.name, session.bob.name)},
            "pools": pools,
            "invocations": session.comparison_backend.invocations,
            "cache": (dict(self.cache.ciphers)
                      if self.cache is not None else None),
        }

    def _restore(self, state) -> None:
        if state is None:
            return
        session = self.session
        for name, rng_state in state["rngs"].items():
            session.party(name).rng.setstate(rng_state)
        for key, (factors, pregenerated, consumed, misses,
                  rng_state) in state["pools"].items():
            pool = session._pools[key]
            pool._factors.clear()
            pool._factors.extend(factors)
            pool.pregenerated = pregenerated
            pool.consumed = consumed
            pool.misses = misses
            pool.rng.setstate(rng_state)
        session.comparison_backend.invocations = state["invocations"]
        if self.cache is not None:
            self.cache.ciphers.clear()
            self.cache.ciphers.update(state["cache"])

    async def run(self, fn: Callable[[LeakageLedger], object],
                  out_ledger: LeakageLedger | None = None,
                  span=NULL_SPAN):
        """Run ``fn`` to completion, re-executing on :class:`NeedFrame`.

        ``fn`` receives a fresh ledger per attempt (an aborted attempt
        must leave no disclosure records); the successful attempt's
        records are folded into ``out_ledger``.  While an attempt is in
        flight the lease is flagged busy, so the service's idle refill
        never deposits into a pool between snapshot and restore.
        ``span`` (a peer-query span) gets one child per attempt; parked
        attempts record the frame label they waited for.
        """
        if self.lease is not None:
            self.lease.busy += 1
        try:
            self.channel.begin_query()
            snapshot = self._capture()
            attempt = 0
            while True:
                attempt += 1
                self.channel.begin_attempt()
                attempt_span = span.child("attempt", f"attempt{attempt}",
                                          attempt=attempt)
                attempt_ledger = LeakageLedger()
                try:
                    result = fn(attempt_ledger)
                except NeedFrame as need:
                    self.restarts += 1
                    self.obs_restarts.inc()
                    self._restore(snapshot)
                    attempt_span.set(parked_on=need.label)
                    attempt_span.close()
                    self.obs_parked.inc()
                    try:
                        self.channel.stage(await self.link.wait_message(
                            f"frame {need.label!r}"))
                    finally:
                        self.obs_parked.dec()
                    continue
                attempt_span.close()
                if out_ledger is not None:
                    out_ledger.extend(attempt_ledger)
                return result
        finally:
            if self.lease is not None:
                self.lease.busy -= 1


async def drive_pass_async(mesh, driver_name: str,
                           points_by_party: dict[str, list], config,
                           value_bound: int, ledger: LeakageLedger,
                           caches, runtimes: dict[str, PairRuntime],
                           span=NULL_SPAN):
    """One driver pass at message granularity: the async ``_driver_pass``.

    Steps the *same* :func:`_pass_program` generator as the threaded
    driver -- identical clustering control flow, identical query
    sequence -- but executes each density test's per-peer queries as
    coroutines under ``asyncio.gather`` via the pair runtimes.  Returns
    ``(labels, executor)``; the executor carries the pass-level
    virtual-time charge and pass count.  ``span`` (the pass span) gets
    one ``peer_query`` child per (step, peer) -- the substrate of the
    ``repro trace summarize`` critical path.
    """
    step = 0

    async def run_query(task: PeerQuery, out_ledger: LeakageLedger) -> int:
        # All queries of one step run before ``step`` advances, so the
        # closure read is race-free under the gather.
        with span.child("peer_query", f"step{step}:{task.peer}",
                        step=step, peer=task.peer) as query_span:
            return await runtimes[task.peer].run(task.run, out_ledger,
                                                 span=query_span)

    executor = AsyncPassExecutor(run_query)
    program = _pass_program(list(points_by_party[driver_name]), config)
    try:
        query_point = next(program)
        while True:
            tasks = _build_peer_queries(mesh, driver_name, points_by_party,
                                        query_point, config, value_bound,
                                        caches)
            total = _merge_outcomes(
                await executor.run_pass_async(tasks), ledger)
            step += 1
            query_point = program.send(total)
    except StopIteration as done:
        return done.value, executor


__all__ = [
    "NeedFrame",
    "PairRuntime",
    "ReplayDivergenceError",
    "RestartableMirrorChannel",
    "drive_pass_async",
]
