"""The public run description shared by every party process.

A :class:`RunManifest` is everything about an orchestrated run that is
*public by protocol design* -- party names and order, per-party RNG
seeds, per-party point counts, the dimensionality, the comparison-domain
bound, the full protocol configuration, and the port plan.  Private data
(the coordinates themselves) never enters the manifest; each party loads
its own partition file and nothing else.

The manifest is also the unit the handshake digests: two processes whose
manifests differ in *any* field produce different digests and refuse
each other's links before a single protocol byte flows.

Supported configuration surface
-------------------------------

The socket runtime executes the existing choreography implementations on
both ends of every link (see :mod:`repro.runtime.mirror`), which
requires every party's *coin streams* to be derivable from public
seeds: ``SmcConfig.key_seed`` and per-party seeds are mandatory, and
the comparison backend must be ``"bitwise"`` (the ``oracle`` backend
compares both plaintexts locally without touching the wire -- there is
nothing to transport -- and ``ympp`` support is future work).  Key
material is *sealed* per party: each process derives only its **own**
slot's keypair from ``key_seed``; peers' public keys are captured from
the authentic wire exchange and cross-checked against the manifest's
per-party ``key_digests``, and their private halves exist in this
process only as public-only sealed stand-ins
(:mod:`repro.crypto.sealed`).  Unsupported configurations raise
:class:`UnsupportedConfigError` at orchestration time, never mid-run.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field

from repro.core.config import ProtocolConfig
from repro.smc.session import SmcConfig

#: Default hostname party processes bind and dial.  Loopback by
#: default: single-machine runs need no routing.  Multi-host meshes
#: pass an explicit host per manifest plus a ``bind_host`` on the
#: listening side, and should enable link authentication (a pre-shared
#: key -- see DESIGN.md, "Threat model") so frames crossing a real
#: network are integrity-checked.
DEFAULT_HOST = "127.0.0.1"


class UnsupportedConfigError(ValueError):
    """The configuration cannot run on the socket runtime (yet)."""


class ManifestError(ValueError):
    """Malformed or inconsistent manifest data."""


_SMC_FIELDS = ("paillier_bits", "rsa_bits", "comparison", "mask_sigma",
               "faithful_shared_r", "key_seed", "precompute")
_PROTOCOL_FIELDS = ("eps", "min_pts", "scale", "selection",
                    "blind_cross_sum", "query_constant_blinding",
                    "cache_peer_ciphertexts", "batched_region_queries",
                    "batched_comparisons", "use_grid_index",
                    "concurrent_peers", "peer_workers")


#: Comparison backends the socket runtime can execute, with the reason
#: each *other* backend is refused -- surfaced verbatim in
#: :class:`UnsupportedConfigError` so a rejection names what IS allowed.
SUPPORTED_COMPARISON_BACKENDS = ("bitwise",)
_UNSUPPORTED_COMPARISON_REASONS = {
    "oracle": "compares both plaintexts locally -- nothing crosses a "
              "wire, so there is nothing for the runtime to transport",
    "ympp": "RSA-based millionaires' comparison is not yet mirrored "
            "over sockets (future work)",
}


def validate_runtime_config(config: ProtocolConfig) -> None:
    """Refuse configurations the socket runtime cannot execute."""
    if config.smc.comparison not in SUPPORTED_COMPARISON_BACKENDS:
        supported = ", ".join(repr(name)
                              for name in SUPPORTED_COMPARISON_BACKENDS)
        reason = _UNSUPPORTED_COMPARISON_REASONS.get(
            config.smc.comparison, "not a comparison backend the socket "
            "runtime knows how to mirror")
        raise UnsupportedConfigError(
            f"comparison backend {config.smc.comparison!r} cannot run on "
            f"the socket runtime: {reason}.  Supported backends: "
            f"{supported}")
    if config.smc.key_seed is None:
        raise UnsupportedConfigError(
            "the socket runtime requires SmcConfig(key_seed=...): every "
            "party process derives its OWN slot's keypair "
            "deterministically (peers' public keys arrive over the wire, "
            "pinned by the manifest's key_digests -- see DESIGN.md, "
            "'Sealed per-party keys')")
    if config.smc.engine is not None:
        raise UnsupportedConfigError(
            "SmcConfig.engine cannot cross a process boundary; party "
            "processes build their own engines (leave engine=None)")
    if config.smc.transport is not None:
        raise UnsupportedConfigError(
            "SmcConfig.transport is ignored by the socket runtime (every "
            "link is TCP); leave transport=None rather than configuring "
            "a fabric that would silently not apply")


def config_to_dict(config: ProtocolConfig) -> dict:
    """Serialize the runtime-relevant configuration, validating support."""
    validate_runtime_config(config)
    payload = {name: getattr(config, name) for name in _PROTOCOL_FIELDS}
    payload["smc"] = {name: getattr(config.smc, name)
                      for name in _SMC_FIELDS}
    return payload


def config_from_dict(payload: dict) -> ProtocolConfig:
    smc = SmcConfig(**{name: payload["smc"][name] for name in _SMC_FIELDS})
    kwargs = {name: payload[name] for name in _PROTOCOL_FIELDS}
    return ProtocolConfig(smc=smc, **kwargs)


@dataclass(frozen=True)
class RunManifest:
    """Public description of one orchestrated run.

    Attributes:
        session_id: unique id of this run; the handshake refuses links
            across sessions.
        names: party names in mesh slot order (the order drives pass
            sequencing, key-slot derivation, and pair orientation).
        seeds: per-party RNG seeds, parallel to ``names``.  Public by
            construction: the runtime's determinism -- and the privacy
            analysis of the reproduction as a whole -- treats coin
            streams as reproducible test fixtures, not secrets.
        counts: per-party point counts (public: the paper's protocols
            reveal dataset sizes).
        dimensions: coordinate dimensionality, shared by all parties.
        value_bound: the public comparison-domain bound
            (``squared_distance_bound`` over the union of all parties'
            points; every process must use the same bound or mask sizes
            and DGK widths diverge).
        ports: ``{pair_key: port}`` -- one TCP port per unordered pair;
            the lower-slot party listens, the higher-slot party dials.
        config: the protocol configuration dict
            (:func:`config_to_dict` shape).
        host: bind/dial host for every link.
        timeout_s: socket receive timeout for protocol frames.
        connect_timeout_s: total budget for one link's dial (and the
            matching accept wait) during link-up -- generous, because
            after a failure the surviving parties wait here for the
            dead party's re-spawn.
        connect_retries: maximum dial attempts within that budget.
        backoff_base_s: base of the shared exponential-backoff-with-
            seeded-jitter cadence (see :mod:`repro.runtime.backoff`)
            used between dial attempts and between orchestrator
            re-spawns.
        recovery_budget: how many recovery cycles (teardown, epoch
            bump, re-link-up, resume) one party process tolerates
            before giving up fatally.
        faults: the serialized :class:`~repro.runtime.faults.FaultPlan`
            (empty for a fault-free run).  Manifest-carried so every
            process interprets the same seeded plan -- deterministic
            chaos, inside the handshake digest like everything else.
        rng_namespace: optional per-session coin-stream namespace (see
            :func:`repro.multiparty.mesh.derive_pair_rng`).  The daemon
            runtime sets it to the session id so concurrent sessions
            sharing seeds never share coins; ``None`` -- the
            single-session default -- keeps the legacy streams, so
            every pre-existing manifest digest and equivalence is
            untouched.
        key_digests: ``{party: sha256}`` over each party's Paillier
            *public* key (:func:`repro.crypto.sealed.paillier_public_digest`),
            computed by the trusted orchestrator at manifest-build time.
            Each party process derives only its own keypair; peers'
            public keys are captured from the wire exchange and
            cross-checked (constant-time) against these digests before
            any protocol byte depends on them.  Empty -- the legacy
            default -- skips the pin, so pre-PR-8 manifests still load.
        link_auth: whether every link authenticates its frames with the
            out-of-band pre-shared key (HMAC handshake tag + per-frame
            MACs).  The PSK itself NEVER enters the manifest -- only
            this public flag does, inside the handshake digest, so an
            authenticated and an unauthenticated deployment can never
            half-connect.
    """

    session_id: str
    names: tuple[str, ...]
    seeds: tuple[int, ...]
    counts: dict[str, int]
    dimensions: int
    value_bound: int
    ports: dict[str, int]
    config: dict
    host: str = DEFAULT_HOST
    timeout_s: float = 30.0
    connect_timeout_s: float = 15.0
    connect_retries: int = 120
    backoff_base_s: float = 0.02
    recovery_budget: int = 3
    faults: tuple = ()
    rng_namespace: str | None = None
    key_digests: dict = field(default_factory=dict)
    link_auth: bool = False
    version: int = field(default=1)

    def __post_init__(self):
        if len(self.names) < 2:
            raise ManifestError("a run needs at least two parties")
        if len(set(self.names)) != len(self.names):
            raise ManifestError(f"duplicate party names in {self.names}")
        if len(self.seeds) != len(self.names):
            raise ManifestError("seeds must parallel names")
        if set(self.counts) != set(self.names):
            raise ManifestError("counts must cover exactly the party names")
        if self.dimensions < 1:
            raise ManifestError(
                f"dimensions must be >= 1, got {self.dimensions}")
        if self.value_bound < 1:
            raise ManifestError(
                f"value_bound must be >= 1, got {self.value_bound}")
        expected_pairs = {pair_key(a, b) for a, b in self.pairs()}
        if set(self.ports) != expected_pairs:
            raise ManifestError(
                f"ports must cover exactly the mesh pairs "
                f"{sorted(expected_pairs)}, got {sorted(self.ports)}")
        if self.connect_timeout_s <= 0:
            raise ManifestError(
                f"connect_timeout_s must be > 0, got "
                f"{self.connect_timeout_s}")
        if self.connect_retries < 1:
            raise ManifestError(
                f"connect_retries must be >= 1, got {self.connect_retries}")
        if self.backoff_base_s < 0:
            raise ManifestError(
                f"backoff_base_s must be >= 0, got {self.backoff_base_s}")
        if self.recovery_budget < 0:
            raise ManifestError(
                f"recovery_budget must be >= 0, got {self.recovery_budget}")
        if self.key_digests and set(self.key_digests) != set(self.names):
            raise ManifestError(
                f"key_digests must cover exactly the party names "
                f"{sorted(self.names)}, got {sorted(self.key_digests)}")
        object.__setattr__(self, "faults",
                           tuple(dict(spec) for spec in self.faults))

    # -- mesh geometry -----------------------------------------------------

    def pairs(self) -> list[tuple[str, str]]:
        """Unordered pairs in slot order (matches ``PartyMesh``)."""
        return [(left, right)
                for index, left in enumerate(self.names)
                for right in self.names[index + 1:]]

    def pairs_of(self, name: str) -> list[tuple[str, str]]:
        return [pair for pair in self.pairs() if name in pair]

    def slot_of(self, name: str) -> int:
        try:
            return self.names.index(name)
        except ValueError:
            raise ManifestError(f"unknown party {name!r}") from None

    def seed_of(self, name: str) -> int:
        return self.seeds[self.slot_of(name)]

    def peers_of(self, name: str) -> list[str]:
        self.slot_of(name)
        return [other for other in self.names if other != name]

    def placeholder_points(self, name: str) -> list[tuple[int, ...]]:
        """A remote party's partition as this process may know it: the
        public *count* of points, each an all-zeros coordinate tuple.
        The mirrored choreography computes on these placeholders only in
        code paths whose outputs are discarded and replaced by authentic
        wire frames (see :mod:`repro.runtime.mirror`)."""
        zero = tuple([0] * self.dimensions)
        return [zero] * self.counts[name]

    def protocol_config(self) -> ProtocolConfig:
        return config_from_dict(self.config)

    # -- serialization -----------------------------------------------------

    def to_json(self) -> str:
        payload = {
            "session_id": self.session_id,
            "names": list(self.names),
            "seeds": list(self.seeds),
            "counts": dict(self.counts),
            "dimensions": self.dimensions,
            "value_bound": self.value_bound,
            "ports": dict(self.ports),
            "config": self.config,
            "host": self.host,
            "timeout_s": self.timeout_s,
            "connect_timeout_s": self.connect_timeout_s,
            "connect_retries": self.connect_retries,
            "backoff_base_s": self.backoff_base_s,
            "recovery_budget": self.recovery_budget,
            "faults": [dict(spec) for spec in self.faults],
            "rng_namespace": self.rng_namespace,
            "key_digests": dict(self.key_digests),
            "link_auth": self.link_auth,
            "version": self.version,
        }
        return json.dumps(payload, sort_keys=True, indent=2) + "\n"

    @classmethod
    def from_json(cls, payload: str) -> "RunManifest":
        try:
            data = json.loads(payload)
        except json.JSONDecodeError as exc:
            raise ManifestError(f"unreadable manifest: {exc}") from exc
        try:
            return cls(
                session_id=data["session_id"],
                names=tuple(data["names"]),
                seeds=tuple(data["seeds"]),
                counts=dict(data["counts"]),
                dimensions=data["dimensions"],
                value_bound=data["value_bound"],
                ports=dict(data["ports"]),
                config=data["config"],
                host=data.get("host", DEFAULT_HOST),
                timeout_s=data.get("timeout_s", 30.0),
                connect_timeout_s=data.get("connect_timeout_s", 15.0),
                connect_retries=data.get("connect_retries", 120),
                backoff_base_s=data.get("backoff_base_s", 0.02),
                recovery_budget=data.get("recovery_budget", 3),
                faults=tuple(data.get("faults", ())),
                rng_namespace=data.get("rng_namespace"),
                key_digests=dict(data.get("key_digests", {})),
                link_auth=bool(data.get("link_auth", False)),
                version=data.get("version", 1),
            )
        except KeyError as exc:
            raise ManifestError(f"manifest missing field {exc}") from exc


def pair_key(a: str, b: str) -> str:
    """Canonical string key of an unordered pair (JSON-dict friendly).

    Shares its ordering with the transport layer's pair
    canonicalization, so link profiles, ports, and reports all key the
    same way.
    """
    from repro.net.transport import canonical_pair

    return "|".join(canonical_pair(a, b))


def manifest_digest(manifest: RunManifest) -> str:
    """SHA-256 over the canonical manifest JSON -- the handshake binding.

    Any divergence between two processes' manifests (a different seed, a
    different point count, a flipped protocol flag) changes the digest,
    so mismatched deployments are refused at link setup.
    """
    return hashlib.sha256(manifest.to_json().encode()).hexdigest()
