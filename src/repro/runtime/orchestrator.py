"""Session orchestrator: spawn party processes, collect, merge.

:func:`orchestrate_run` turns a ``{party: points}`` workload and a
:class:`~repro.core.config.ProtocolConfig` into a real distributed run:

1. build the :class:`~repro.runtime.manifest.RunManifest` (names, seeds,
   counts, the public ``value_bound``, a fresh session id, one TCP port
   per mesh pair) and write it -- plus one partition file per party --
   into a run directory;
2. spawn ``python -m repro party --run-dir ... --party NAME`` once per
   party: each subprocess loads *only its own* partition file, links up
   over loopback TCP, and runs its passes (no shared memory, no shared
   interpreter state -- key caches, engines, pools all rebuilt per
   process);
3. supervise: a party exiting nonzero aborts the run and surfaces *which*
   party died, its exit code, and its stderr tail; a deadline overrun
   kills the fleet and reports who was still running;
4. merge the per-party reports into the exact
   :class:`~repro.multiparty.horizontal.MultipartyRunResult` shape the
   in-process mesh returns -- labels per party, the global disclosure
   ledger in pass order, the merged communication snapshot, and the
   comparison count -- and cross-check that both ends of every pair
   report the same transcript digest (a divergence is a runtime bug,
   never tolerated silently).
"""

from __future__ import annotations

import json
import os
import pathlib
import shutil
import socket
import subprocess
import sys
import tempfile
import time
import uuid
from dataclasses import dataclass

from repro.core.config import ProtocolConfig
from repro.core.leakage import LeakageLedger
from repro.data.quantize import squared_distance_bound
from repro.multiparty.horizontal import MultipartyRunResult
from repro.net.stats import merge_snapshots
from repro.runtime.manifest import (
    DEFAULT_HOST,
    RunManifest,
    config_to_dict,
    pair_key,
)
from repro.runtime.party import PartyReport


class OrchestrationError(RuntimeError):
    """A party process failed, hung, or reported divergent observables."""


@dataclass(frozen=True)
class OrchestratedRun:
    """A distributed run's merged result plus runtime evidence.

    Attributes:
        result: the merged protocol result, shaped exactly like the
            in-process mesh's return value.
        reports: per-party :class:`~repro.runtime.party.PartyReport`.
        transcript_digests: per-pair SHA-256 of the message sequence,
            agreed by both ends of the pair -- compare against
            :func:`repro.net.transcript.transcript_digest` of an
            in-process run to assert wire-level equivalence.
        manifest: the manifest the parties ran under.
        elapsed_seconds: orchestrator-observed wall clock, spawn to
            last report.
    """

    result: MultipartyRunResult
    reports: dict[str, PartyReport]
    transcript_digests: dict[str, str]
    manifest: RunManifest
    elapsed_seconds: float


def allocate_ports(count: int, host: str = DEFAULT_HOST) -> list[int]:
    """Grab ``count`` distinct ephemeral ports.

    All sockets are bound before any is closed so the kernel cannot hand
    the same port twice.  The classic race (another process claiming a
    port between release and the party's bind) is accepted for loopback
    orchestration; the party's bind retries and the orchestrator's
    failure diagnosis make a collision loud, not mysterious.
    """
    sockets, ports = [], []
    try:
        for _ in range(count):
            sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            sock.bind((host, 0))
            sockets.append(sock)
            ports.append(sock.getsockname()[1])
    finally:
        for sock in sockets:
            sock.close()
    return ports


def build_manifest(points_by_party: dict[str, list],
                   config: ProtocolConfig, seeds: list[int], *,
                   host: str = DEFAULT_HOST,
                   timeout_s: float = 30.0,
                   session_id: str | None = None,
                   ports: dict[str, int] | None = None) -> RunManifest:
    """Derive the public run description from a workload.

    ``value_bound`` is computed over the union of all parties' points
    with the same function the in-process runner uses, so the secure
    comparison domains -- and therefore every message -- match the
    in-process execution exactly.
    """
    names = list(points_by_party)
    if seeds is None or len(seeds) != len(names):
        raise OrchestrationError(
            "orchestrate_run requires one RNG seed per party (the party "
            "processes derive their pairwise coin streams from them)")
    all_points = [tuple(p) for pts in points_by_party.values() for p in pts]
    if not all_points:
        raise OrchestrationError("no party holds any points")
    dimensions = len(all_points[0])
    value_bound = squared_distance_bound(all_points, all_points)
    pair_keys = [pair_key(a, b)
                 for index, a in enumerate(names)
                 for b in names[index + 1:]]
    if ports is None:
        ports = dict(zip(pair_keys, allocate_ports(len(pair_keys), host)))
    return RunManifest(
        session_id=session_id or uuid.uuid4().hex,
        names=tuple(names),
        seeds=tuple(seeds),
        counts={name: len(points) for name, points in
                points_by_party.items()},
        dimensions=dimensions,
        value_bound=value_bound,
        ports=ports,
        config=config_to_dict(config),
        host=host,
        timeout_s=timeout_s,
    )


def write_run_dir(run_dir: pathlib.Path, manifest: RunManifest,
                  points_by_party: dict[str, list]) -> None:
    """Materialize the manifest and one partition file per party.

    The per-party file is the process-level privacy boundary: each
    spawned party reads ``partition_<its own name>.json`` and nothing
    else (the party program takes ``--party`` and derives the single
    filename; it has no code path that opens a peer's partition).
    """
    run_dir.mkdir(parents=True, exist_ok=True)
    (run_dir / "manifest.json").write_text(manifest.to_json())
    for name, points in points_by_party.items():
        payload = {"party": name,
                   "points": [list(point) for point in points]}
        (run_dir / f"partition_{name}.json").write_text(
            json.dumps(payload) + "\n")


def _spawn_party(run_dir: pathlib.Path, name: str, *,
                 fail_after_queries: int | None) -> subprocess.Popen:
    command = [sys.executable, "-m", "repro", "party",
               "--run-dir", str(run_dir), "--party", name]
    if fail_after_queries is not None:
        command += ["--fail-after-queries", str(fail_after_queries)]
    src_root = pathlib.Path(__file__).resolve().parents[2]
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(src_root)] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH")
                           else []))
    with open(run_dir / f"party_{name}.out", "w") as out, \
            open(run_dir / f"party_{name}.err", "w") as err:
        # Popen dups the descriptors at spawn; closing ours immediately
        # keeps the orchestrator's fd footprint flat across many runs.
        return subprocess.Popen(command, stdout=out, stderr=err, env=env)


def _stderr_tail(run_dir: pathlib.Path, name: str,
                 lines: int = 12) -> str:
    path = run_dir / f"party_{name}.err"
    if not path.exists():
        return "(no stderr captured)"
    tail = path.read_text().strip().splitlines()[-lines:]
    return "\n".join(tail) if tail else "(stderr empty)"


def _supervise(processes: dict[str, subprocess.Popen],
               run_dir: pathlib.Path, deadline_s: float) -> None:
    deadline = time.monotonic() + deadline_s
    pending = dict(processes)
    while pending:
        for name, process in list(pending.items()):
            code = process.poll()
            if code is None:
                continue
            del pending[name]
            if code != 0:
                for other in pending.values():
                    other.kill()
                for other in pending.values():
                    other.wait()
                raise OrchestrationError(
                    f"party {name!r} exited with code {code}; the fleet "
                    f"was torn down.  stderr tail:\n"
                    f"{_stderr_tail(run_dir, name)}")
        if pending and time.monotonic() >= deadline:
            states = {name: "running" for name in pending}
            for name, process in pending.items():
                process.kill()
            for process in pending.values():
                process.wait()
            raise OrchestrationError(
                f"run exceeded the {deadline_s}s deadline; killed "
                f"{sorted(states)} (a party hung in link-up or a "
                f"protocol receive -- see party_<name>.err in "
                f"{run_dir})")
        if pending:
            time.sleep(0.02)


def merge_reports(manifest: RunManifest,
                  reports: dict[str, PartyReport]) -> tuple[
                      MultipartyRunResult, dict[str, str]]:
    """Merge per-party reports into the in-process result shape.

    Both ends of every pair independently recorded the pair's full
    message sequence; their digests must agree (the mirror makes them
    byte-identical by construction, so a mismatch means a runtime bug
    and raises).  Per-pair figures are then taken from the lower-slot
    party, never double-counted.
    """
    digests: dict[str, str] = {}
    snapshots: list[dict] = []
    comparisons = 0
    for left, right in manifest.pairs():
        key = pair_key(left, right)
        left_pair = reports[left].pair_reports[key]
        right_pair = reports[right].pair_reports[key]
        if left_pair["transcript_sha256"] != right_pair["transcript_sha256"]:
            raise OrchestrationError(
                f"transcript divergence on pair {key}: {left!r} digests "
                f"{left_pair['transcript_sha256'][:12]}..., {right!r} "
                f"digests {right_pair['transcript_sha256'][:12]}...")
        if left_pair["comparisons"] != right_pair["comparisons"]:
            raise OrchestrationError(
                f"comparison-count divergence on pair {key}: "
                f"{left_pair['comparisons']} vs {right_pair['comparisons']}")
        digests[key] = left_pair["transcript_sha256"]
        snapshots.append(left_pair["stats"])
        comparisons += left_pair["comparisons"]

    # The global disclosure sequence: drivers take turns in manifest
    # order, and each party's report holds exactly its own pass's
    # events, so concatenation in names order reproduces the in-process
    # ledger.
    ledger = LeakageLedger()
    for name in manifest.names:
        ledger.extend(reports[name].ledger())

    result = MultipartyRunResult(
        labels_by_party={name: reports[name].labels
                         for name in manifest.names},
        ledger=ledger,
        stats=merge_snapshots(snapshots),
        comparisons=comparisons,
        simulated_seconds=0.0,
    )
    return result, digests


def verify_against_in_process(run: OrchestratedRun,
                              points_by_party: dict[str, list],
                              config: ProtocolConfig,
                              seeds: list[int], *,
                              reference=None,
                              mesh=None) -> dict[str, bool]:
    """The equivalence bar, as data: run the workload on the in-process
    fabric and compare every protocol observable.

    Returns ``{check: passed}`` for labels, the disclosure ledger, the
    comparison count, the per-pair transcript digests, and the merged
    stats snapshot.  The CLI's ``--verify``, the distributed example,
    and the benchmark's ``socket_runtime`` arm all call this one helper,
    so the bar cannot drift between surfaces.  Callers that already ran
    the in-process arm (benchmarks, timing both sides) pass their
    ``reference`` result and ``mesh`` to skip the duplicate execution.
    """
    from repro.multiparty.horizontal import run_multiparty_horizontal_dbscan
    from repro.multiparty.mesh import PartyMesh
    from repro.net.transcript import transcript_digest

    if (reference is None) != (mesh is None):
        raise OrchestrationError(
            "pass reference and mesh together (the digests come from the "
            "mesh that produced the reference result)")
    if mesh is None:
        mesh = PartyMesh(list(points_by_party), config.smc, seeds=seeds)
        reference = run_multiparty_horizontal_dbscan(
            points_by_party, config, seeds=seeds, mesh=mesh)
    reference_digests = {
        pair_key(*pair): transcript_digest(transcript)
        for pair, transcript in mesh.pair_transcripts().items()}
    return {
        "labels": run.result.labels_by_party == reference.labels_by_party,
        "ledger": run.result.ledger.events == reference.ledger.events,
        "comparisons": run.result.comparisons == reference.comparisons,
        "transcripts": run.transcript_digests == reference_digests,
        "stats": run.result.stats == reference.stats,
    }


def orchestrate_run(points_by_party: dict[str, list],
                    config: ProtocolConfig, *,
                    seeds: list[int],
                    run_dir: str | pathlib.Path | None = None,
                    deadline_s: float = 180.0,
                    timeout_s: float = 30.0,
                    keep_run_dir: bool = False,
                    fault_injection: dict[str, int] | None = None,
                    ) -> OrchestratedRun:
    """Run the k-party horizontal protocol as real processes over TCP.

    Args:
        points_by_party: party name -> integer-grid points (the
            orchestrator writes each party's partition file; only that
            party's process reads it).
        config: protocol parameters; must be socket-runtime supported
            (bitwise backend, ``key_seed`` set -- validated up front).
        seeds: per-party RNG seeds, ordered as the dict; mandatory,
            because the party processes derive their pairwise coin
            streams from them.
        run_dir: where to materialize manifest/partitions/reports; a
            temporary directory (removed unless ``keep_run_dir``) when
            omitted.
        deadline_s: fleet-wide wall-clock bound; overruns kill all
            parties and raise with a per-party status.
        timeout_s: per-receive socket timeout inside the parties.
        fault_injection: ``{party: N}`` -- that party's process dies
            hard (``os._exit``) after its N-th query, for testing the
            failure paths.
    """
    manifest = build_manifest(points_by_party, config, seeds,
                              timeout_s=timeout_s)
    owns_dir = run_dir is None
    run_path = (pathlib.Path(tempfile.mkdtemp(prefix="repro-run-"))
                if owns_dir else pathlib.Path(run_dir))
    started = time.perf_counter()
    try:
        write_run_dir(run_path, manifest, points_by_party)
        fault_injection = fault_injection or {}
        processes = {
            name: _spawn_party(
                run_path, name,
                fail_after_queries=fault_injection.get(name))
            for name in manifest.names
        }
        _supervise(processes, run_path, deadline_s)
        reports = {}
        for name in manifest.names:
            report_path = run_path / f"report_{name}.json"
            if not report_path.exists():
                raise OrchestrationError(
                    f"party {name!r} exited cleanly but wrote no report "
                    f"(stderr tail:\n{_stderr_tail(run_path, name)})")
            reports[name] = PartyReport.from_json(report_path.read_text())
        result, digests = merge_reports(manifest, reports)
        elapsed = time.perf_counter() - started
        return OrchestratedRun(result=result, reports=reports,
                               transcript_digests=digests,
                               manifest=manifest,
                               elapsed_seconds=elapsed)
    finally:
        if owns_dir and not keep_run_dir:
            shutil.rmtree(run_path, ignore_errors=True)
