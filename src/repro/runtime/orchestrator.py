"""Session orchestrator: spawn party processes, supervise, merge.

:func:`orchestrate_run` turns a ``{party: points}`` workload and a
:class:`~repro.core.config.ProtocolConfig` into a real distributed run:

1. build the :class:`~repro.runtime.manifest.RunManifest` (names, seeds,
   counts, the public ``value_bound``, a fresh session id, one TCP port
   per mesh pair, the recovery knobs, and any planned faults) and write
   it -- plus one partition file per party -- into a run directory;
2. spawn ``python -m repro party --run-dir ... --party NAME`` once per
   party: each subprocess loads *only its own* partition file, links up
   over loopback TCP, and runs its passes (no shared memory, no shared
   interpreter state -- key caches, engines, pools all rebuilt per
   process);
3. **supervise with recovery**: a party exiting nonzero is classified
   from its ``failure_<name>.json`` (bare exit codes -- SIGKILL, an
   injected ``os._exit`` -- default to a retryable crash).  Retryable
   deaths re-spawn the party with ``--resume`` under a bounded retry
   budget with exponential backoff and seeded jitter; the survivors
   meanwhile rewind to the last common checkpoint and wait in link-up at
   the next recovery epoch.  Fatal classifications (digest divergence,
   refused handshakes, corrupt checkpoints, an exhausted in-party
   budget) abort the fleet immediately with the report attached.
   Deadline overruns kill the fleet and report who was still running.
   Children are *always* reaped, whatever path aborts the run;
4. merge the per-party reports into the exact
   :class:`~repro.multiparty.horizontal.MultipartyRunResult` shape the
   in-process mesh returns -- labels per party, the global disclosure
   ledger in pass order, the merged communication snapshot, and the
   comparison count -- and cross-check that both ends of every pair
   report the same transcript digest (a divergence is a runtime bug,
   never tolerated silently).

The recovery equivalence bar: a run that crashed and recovered merges
to *bit-identical* observables -- labels, ledger, transcripts, stats,
comparison counts -- as the same workload fault-free (tested in
``tests/runtime/test_faults.py``).
"""

from __future__ import annotations

import json
import os
import pathlib
import shutil
import socket
import subprocess
import sys
import tempfile
import time
import uuid
from dataclasses import dataclass, field

from repro.core.config import ProtocolConfig
from repro.core.leakage import LeakageLedger
from repro.crypto.keycache import cached_paillier_keypair
from repro.crypto.sealed import paillier_public_digest
from repro.data.quantize import squared_distance_bound
from repro.multiparty.horizontal import MultipartyRunResult
from repro.net.stats import merge_snapshots
from repro.obs.metrics import default_registry
from repro.runtime.backoff import backoff_delay, jitter_rng
from repro.runtime.failure import (
    CAUSE_CRASH,
    FATAL,
    RETRYABLE,
    FailureReport,
    failure_path,
    load_failure,
)
from repro.runtime.faults import FaultPlan, FaultSpec, parse_fault
from repro.runtime.manifest import (
    DEFAULT_HOST,
    RunManifest,
    config_to_dict,
    pair_key,
)
from repro.runtime.party import PartyReport


class OrchestrationError(RuntimeError):
    """A party process failed, hung, or reported divergent observables.

    ``failures`` carries the structured per-party
    :class:`~repro.runtime.failure.FailureReport` history of the run
    (every death, including the ones that were recovered), so callers
    -- the CLI in particular -- can print classified diagnostics
    instead of a bare exit code.
    """

    def __init__(self, message: str,
                 failures: tuple[FailureReport, ...] = ()):
        super().__init__(message)
        self.failures = failures


@dataclass(frozen=True)
class OrchestratedRun:
    """A distributed run's merged result plus runtime evidence.

    Attributes:
        result: the merged protocol result, shaped exactly like the
            in-process mesh's return value.
        reports: per-party :class:`~repro.runtime.party.PartyReport`.
        transcript_digests: per-pair SHA-256 of the message sequence,
            agreed by both ends of the pair -- compare against
            :func:`repro.net.transcript.transcript_digest` of an
            in-process run to assert wire-level equivalence.
        manifest: the manifest the parties ran under.
        elapsed_seconds: orchestrator-observed wall clock, spawn to
            last report.
        respawns: how many times each party was re-spawned (all zero
            for a fault-free run).
        failures: every classified death observed during the run --
            non-empty on a successfully *recovered* run.
    """

    result: MultipartyRunResult
    reports: dict[str, PartyReport]
    transcript_digests: dict[str, str]
    manifest: RunManifest
    elapsed_seconds: float
    respawns: dict[str, int] = field(default_factory=dict)
    failures: tuple[FailureReport, ...] = ()


def allocate_ports(count: int, host: str = DEFAULT_HOST) -> list[int]:
    """Grab ``count`` distinct ephemeral ports.

    All sockets are bound before any is closed so the kernel cannot hand
    the same port twice.  The classic race (another process claiming a
    port between release and the party's bind) is accepted for loopback
    orchestration; the party's bind retries and the orchestrator's
    failure diagnosis make a collision loud, not mysterious.
    """
    sockets, ports = [], []
    try:
        for _ in range(count):
            sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            sock.bind((host, 0))
            sockets.append(sock)
            ports.append(sock.getsockname()[1])
    finally:
        for sock in sockets:
            sock.close()
    return ports


def build_manifest(points_by_party: dict[str, list],
                   config: ProtocolConfig, seeds: list[int], *,
                   host: str = DEFAULT_HOST,
                   timeout_s: float = 30.0,
                   connect_timeout_s: float = 15.0,
                   connect_retries: int = 120,
                   backoff_base_s: float = 0.02,
                   recovery_budget: int = 3,
                   faults: FaultPlan | None = None,
                   session_id: str | None = None,
                   ports: dict[str, int] | None = None,
                   rng_namespace: str | None = None,
                   link_auth: bool = False) -> RunManifest:
    """Derive the public run description from a workload.

    ``value_bound`` is computed over the union of all parties' points
    with the same function the in-process runner uses, so the secure
    comparison domains -- and therefore every message -- match the
    in-process execution exactly.  The fault plan rides in the manifest
    (and hence inside the handshake digest): every process interprets
    the same planned failures, which keeps chaos runs reproducible.

    ``key_digests``: the orchestrator is the one place that may derive
    *every* party's keypair (it is the trusted workload owner handing
    out partitions anyway), so it pins each party's expected Paillier
    *public* key digest into the manifest.  The party processes derive
    only their own slot's keypair; each peer public key arrives over
    the wire and is cross-checked against these digests at session
    start.  Digests expose no secret: they hash public parameters.
    """
    names = list(points_by_party)
    if seeds is None or len(seeds) != len(names):
        raise OrchestrationError(
            "orchestrate_run requires one RNG seed per party (the party "
            "processes derive their pairwise coin streams from them)")
    all_points = [tuple(p) for pts in points_by_party.values() for p in pts]
    if not all_points:
        raise OrchestrationError("no party holds any points")
    dimensions = len(all_points[0])
    value_bound = squared_distance_bound(all_points, all_points)
    pair_keys = [pair_key(a, b)
                 for index, a in enumerate(names)
                 for b in names[index + 1:]]
    if ports is None:
        ports = dict(zip(pair_keys, allocate_ports(len(pair_keys), host)))
    key_digests: dict[str, str] = {}
    if config.smc.key_seed is not None:
        key_digests = {
            name: paillier_public_digest(cached_paillier_keypair(
                config.smc.paillier_bits,
                100 * config.smc.key_seed + slot).public_key)
            for slot, name in enumerate(names)}
    return RunManifest(
        session_id=session_id or uuid.uuid4().hex,
        names=tuple(names),
        seeds=tuple(seeds),
        counts={name: len(points) for name, points in
                points_by_party.items()},
        dimensions=dimensions,
        value_bound=value_bound,
        ports=ports,
        config=config_to_dict(config),
        host=host,
        timeout_s=timeout_s,
        connect_timeout_s=connect_timeout_s,
        connect_retries=connect_retries,
        backoff_base_s=backoff_base_s,
        recovery_budget=recovery_budget,
        faults=(faults or FaultPlan()).to_dicts(),
        rng_namespace=rng_namespace,
        key_digests=key_digests,
        link_auth=link_auth,
    )


def write_run_dir(run_dir: pathlib.Path, manifest: RunManifest,
                  points_by_party: dict[str, list]) -> None:
    """Materialize the manifest and one partition file per party.

    The per-party file is the process-level privacy boundary: each
    spawned party reads ``partition_<its own name>.json`` and nothing
    else (the party program takes ``--party`` and derives the single
    filename; it has no code path that opens a peer's partition).

    Stale recovery artifacts from a previous run in the same directory
    (checkpoints, failure and party reports) are removed: they belong
    to a dead session, and a resume must never pick them up.
    """
    run_dir.mkdir(parents=True, exist_ok=True)
    for pattern in ("checkpoint_*.json", "failure_*.json",
                    "report_*.json"):
        for stale in run_dir.glob(pattern):
            stale.unlink()
    (run_dir / "manifest.json").write_text(manifest.to_json())
    for name, points in points_by_party.items():
        payload = {"party": name,
                   "points": [list(point) for point in points]}
        (run_dir / f"partition_{name}.json").write_text(
            json.dumps(payload) + "\n")


def _spawn_party(run_dir: pathlib.Path, name: str, *,
                 fail_after_queries: int | None,
                 resume: bool = False,
                 epoch: int = 0,
                 psk: str | None = None,
                 trace_dir: str | None = None) -> subprocess.Popen:
    command = [sys.executable, "-m", "repro", "party",
               "--run-dir", str(run_dir), "--party", name]
    if fail_after_queries is not None:
        command += ["--fail-after-queries", str(fail_after_queries)]
    if resume:
        command += ["--resume", "--epoch", str(epoch)]
    src_root = pathlib.Path(__file__).resolve().parents[2]
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(src_root)] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH")
                           else []))
    if psk:
        # Environment, not argv: the manifest only records *that* links
        # are authenticated; the secret itself never touches disk or a
        # world-readable command line.
        env["REPRO_PSK"] = psk
    if trace_dir:
        env["REPRO_TRACE_DIR"] = str(trace_dir)
    # Append on resume: the previous incarnation's output is part of the
    # run's story and must survive its re-spawn.
    mode = "a" if resume else "w"
    with open(run_dir / f"party_{name}.out", mode) as out, \
            open(run_dir / f"party_{name}.err", mode) as err:
        # Popen dups the descriptors at spawn; closing ours immediately
        # keeps the orchestrator's fd footprint flat across many runs.
        return subprocess.Popen(command, stdout=out, stderr=err, env=env)


def _stderr_tail(run_dir: pathlib.Path, name: str,
                 lines: int = 12) -> str:
    path = run_dir / f"party_{name}.err"
    if not path.exists():
        return "(no stderr captured)"
    tail = path.read_text().strip().splitlines()[-lines:]
    return "\n".join(tail) if tail else "(stderr empty)"


def _reap(processes: dict[str, subprocess.Popen]) -> None:
    """Bring every child down and wait on it -- no orphans, no zombies.

    Runs on *every* exit path (success, abort, deadline kill, an
    exception anywhere in the orchestrator): ``terminate`` first so a
    healthy party can flush its failure report, ``kill`` whatever
    ignores it.
    """
    for process in processes.values():
        if process.poll() is None:
            try:
                process.terminate()
            except OSError:
                pass
    deadline = time.monotonic() + 5.0
    for process in processes.values():
        try:
            process.wait(timeout=max(0.1, deadline - time.monotonic()))
        except subprocess.TimeoutExpired:
            process.kill()
            process.wait()


def _classified_failure(run_dir: pathlib.Path, name: str,
                        code: int) -> FailureReport:
    """The party's own account when it left one; a retryable crash
    otherwise (SIGKILL and ``os._exit`` write nothing)."""
    failure = load_failure(run_dir, name)
    if failure is not None:
        return failure
    return FailureReport(
        party=name, cause=CAUSE_CRASH, classification=RETRYABLE,
        message=f"exited with code {code} without a failure report")


def _supervise(processes: dict[str, subprocess.Popen],
               run_dir: pathlib.Path, manifest: RunManifest,
               deadline_s: float, retry_budget: int,
               fault_injection: dict[str, int],
               psk: str | None = None,
               trace_dir: str | None = None,
               ) -> tuple[dict[str, int], list[FailureReport]]:
    """Wait for the fleet, re-spawning retryable deaths within budget.

    The budget is global (``retry_budget`` re-spawns across the whole
    fleet, not per party), and the re-spawn wave count doubles as the
    ``--epoch`` hint: survivors of the N-th recovery wave re-handshake
    at epoch N, and the resumed party's checkpoint pins it exactly
    (``max(hint, checkpoint epoch + 1)``), with any residual skew
    absorbed by the handshake's adopt-max rule.
    """
    deadline = time.monotonic() + deadline_s
    pending = dict(processes)
    respawns = {name: 0 for name in processes}
    failures: list[FailureReport] = []
    waves = 0
    registry = default_registry()
    obs_waves = registry.counter("repro_retry_waves_total")
    rng = jitter_rng(manifest.seeds[0], "respawn", manifest.session_id)
    while pending:
        progressed = False
        for name, process in list(pending.items()):
            code = process.poll()
            if code is None:
                continue
            progressed = True
            del pending[name]
            if code == 0:
                continue
            failure = _classified_failure(run_dir, name, code)
            failures.append(failure)
            if failure.classification == FATAL:
                raise OrchestrationError(
                    f"party {name!r} exited with code {code} "
                    f"({failure.cause}, fatal -- not retrying): "
                    f"{failure.summary()}\nstderr tail:\n"
                    f"{_stderr_tail(run_dir, name)}",
                    failures=tuple(failures))
            if waves >= retry_budget:
                raise OrchestrationError(
                    f"party {name!r} exited with code {code} "
                    f"({failure.cause}); re-spawn budget of "
                    f"{retry_budget} exhausted, tearing the fleet down.  "
                    f"stderr tail:\n{_stderr_tail(run_dir, name)}",
                    failures=tuple(failures))
            waves += 1
            obs_waves.inc()
            registry.counter("repro_respawns_total", party=name).inc()
            respawns[name] += 1
            # Clear the consumed report so the *next* death (if any)
            # re-classifies from fresh evidence.
            try:
                failure_path(run_dir, name).unlink()
            except OSError:
                pass
            time.sleep(backoff_delay(manifest.backoff_base_s, waves, rng))
            print(f"[orchestrator] re-spawning {name} with --resume "
                  f"(wave {waves}/{retry_budget}, {failure.cause})",
                  flush=True)
            child = _spawn_party(run_dir, name,
                                 fail_after_queries=fault_injection.get(name),
                                 resume=True, epoch=waves, psk=psk,
                                 trace_dir=trace_dir)
            processes[name] = child
            pending[name] = child
        if pending and time.monotonic() >= deadline:
            still_running = sorted(pending)
            raise OrchestrationError(
                f"run exceeded the {deadline_s}s deadline; killing "
                f"{still_running} (a party hung in link-up or a "
                f"protocol receive -- see party_<name>.err in "
                f"{run_dir})", failures=tuple(failures))
        if pending and not progressed:
            time.sleep(0.02)
    return respawns, failures


def merge_reports(manifest: RunManifest,
                  reports: dict[str, PartyReport]) -> tuple[
                      MultipartyRunResult, dict[str, str]]:
    """Merge per-party reports into the in-process result shape.

    Both ends of every pair independently recorded the pair's full
    message sequence; their digests must agree (the mirror makes them
    byte-identical by construction, so a mismatch means a runtime bug
    and raises).  Per-pair figures are then taken from the lower-slot
    party, never double-counted.
    """
    digests: dict[str, str] = {}
    snapshots: list[dict] = []
    comparisons = 0
    for left, right in manifest.pairs():
        key = pair_key(left, right)
        left_pair = reports[left].pair_reports[key]
        right_pair = reports[right].pair_reports[key]
        if left_pair["transcript_sha256"] != right_pair["transcript_sha256"]:
            raise OrchestrationError(
                f"transcript divergence on pair {key}: {left!r} digests "
                f"{left_pair['transcript_sha256'][:12]}..., {right!r} "
                f"digests {right_pair['transcript_sha256'][:12]}...")
        if left_pair["comparisons"] != right_pair["comparisons"]:
            raise OrchestrationError(
                f"comparison-count divergence on pair {key}: "
                f"{left_pair['comparisons']} vs {right_pair['comparisons']}")
        digests[key] = left_pair["transcript_sha256"]
        snapshots.append(left_pair["stats"])
        comparisons += left_pair["comparisons"]

    # The global disclosure sequence: drivers take turns in manifest
    # order, and each party's report holds exactly its own pass's
    # events, so concatenation in names order reproduces the in-process
    # ledger.
    ledger = LeakageLedger()
    for name in manifest.names:
        ledger.extend(reports[name].ledger())

    result = MultipartyRunResult(
        labels_by_party={name: reports[name].labels
                         for name in manifest.names},
        ledger=ledger,
        stats=merge_snapshots(snapshots),
        comparisons=comparisons,
        simulated_seconds=0.0,
    )
    return result, digests


def verify_against_in_process(run: OrchestratedRun,
                              points_by_party: dict[str, list],
                              config: ProtocolConfig,
                              seeds: list[int], *,
                              reference=None,
                              mesh=None) -> dict[str, bool]:
    """The equivalence bar, as data: run the workload on the in-process
    fabric and compare every protocol observable.

    Returns ``{check: passed}`` for labels, the disclosure ledger, the
    comparison count, the per-pair transcript digests, and the merged
    stats snapshot.  The CLI's ``--verify``, the distributed example,
    and the benchmark's ``socket_runtime`` arm all call this one helper,
    so the bar cannot drift between surfaces.  Callers that already ran
    the in-process arm (benchmarks, timing both sides) pass their
    ``reference`` result and ``mesh`` to skip the duplicate execution.
    """
    from repro.multiparty.horizontal import run_multiparty_horizontal_dbscan
    from repro.multiparty.mesh import PartyMesh
    from repro.net.transcript import transcript_digest

    if (reference is None) != (mesh is None):
        raise OrchestrationError(
            "pass reference and mesh together (the digests come from the "
            "mesh that produced the reference result)")
    if mesh is None:
        mesh = PartyMesh(list(points_by_party), config.smc, seeds=seeds)
        reference = run_multiparty_horizontal_dbscan(
            points_by_party, config, seeds=seeds, mesh=mesh)
    reference_digests = {
        pair_key(*pair): transcript_digest(transcript)
        for pair, transcript in mesh.pair_transcripts().items()}
    return {
        "labels": run.result.labels_by_party == reference.labels_by_party,
        "ledger": run.result.ledger.events == reference.ledger.events,
        "comparisons": run.result.comparisons == reference.comparisons,
        "transcripts": run.transcript_digests == reference_digests,
        "stats": run.result.stats == reference.stats,
    }


def orchestrate_run(points_by_party: dict[str, list],
                    config: ProtocolConfig, *,
                    seeds: list[int],
                    run_dir: str | pathlib.Path | None = None,
                    deadline_s: float = 180.0,
                    timeout_s: float = 30.0,
                    connect_timeout_s: float = 15.0,
                    recovery_budget: int = 3,
                    retry_budget: int = 3,
                    backoff_base_s: float = 0.02,
                    faults=(),
                    keep_run_dir: bool = False,
                    fault_injection: dict[str, int] | None = None,
                    psk: str | None = None,
                    trace_dir: str | pathlib.Path | None = None,
                    ) -> OrchestratedRun:
    """Run the k-party horizontal protocol as real processes over TCP.

    Args:
        points_by_party: party name -> integer-grid points (the
            orchestrator writes each party's partition file; only that
            party's process reads it).
        config: protocol parameters; must be socket-runtime supported
            (bitwise backend, ``key_seed`` set -- validated up front).
        seeds: per-party RNG seeds, ordered as the dict; mandatory,
            because the party processes derive their pairwise coin
            streams from them.
        run_dir: where to materialize manifest/partitions/reports; a
            temporary directory (removed unless ``keep_run_dir``) when
            omitted.
        deadline_s: fleet-wide wall-clock bound; overruns kill all
            parties and raise with a per-party status.
        timeout_s: per-receive socket timeout inside the parties.
        connect_timeout_s: per-link dial/accept budget (also how long a
            recovering survivor waits for a dead peer's re-spawn).
        recovery_budget: in-party recovery cycles (survivor-side) per
            process before it gives up.
        retry_budget: orchestrator-side re-spawns across the fleet
            before the run is abandoned.
        backoff_base_s: base of the shared seeded-jitter exponential
            backoff (dial retries, in-party recovery, re-spawns).
        faults: planned failures -- :class:`FaultSpec` objects or spec
            strings like ``"kill:b@pass2"`` (grammar in
            :mod:`repro.runtime.faults`); carried in the manifest so
            every process interprets the same plan.
        keep_run_dir: keep the temporary run directory (checkpoints,
            failure reports, party logs) instead of removing it.
        fault_injection: legacy ``{party: N}`` hook -- that party's
            process dies hard (``os._exit``) after its N-th query on
            *every* incarnation; pair it with ``retry_budget=0`` when
            the test wants the failure path, since resume cannot outrun
            a fault that always re-fires.
        psk: pre-shared key for link authentication.  When given, the
            manifest's ``link_auth`` flag is set (inside the handshake
            digest) and every party frame carries an HMAC; the secret
            itself travels to the party processes by environment only.
        trace_dir: when set, every party process writes a structured
            span trace to ``<trace_dir>/<party>.jsonl`` (propagated via
            the ``REPRO_TRACE_DIR`` environment variable).  Traces
            record timings and sizes only -- never frame bytes or
            plaintext values -- so tracing cannot perturb the
            equivalence bar.
    """
    plan = _coerce_faults(faults, seed=seeds[0] if seeds else 0)
    manifest = build_manifest(points_by_party, config, seeds,
                              timeout_s=timeout_s,
                              connect_timeout_s=connect_timeout_s,
                              backoff_base_s=backoff_base_s,
                              recovery_budget=recovery_budget,
                              faults=plan,
                              link_auth=bool(psk))
    owns_dir = run_dir is None
    run_path = (pathlib.Path(tempfile.mkdtemp(prefix="repro-run-"))
                if owns_dir else pathlib.Path(run_dir))
    started = time.perf_counter()
    processes: dict[str, subprocess.Popen] = {}
    try:
        write_run_dir(run_path, manifest, points_by_party)
        fault_injection = fault_injection or {}
        trace_dir_str = str(trace_dir) if trace_dir else None
        if trace_dir_str:
            pathlib.Path(trace_dir_str).mkdir(parents=True, exist_ok=True)
        for name in manifest.names:
            processes[name] = _spawn_party(
                run_path, name,
                fail_after_queries=fault_injection.get(name), psk=psk,
                trace_dir=trace_dir_str)
        respawns, failures = _supervise(processes, run_path, manifest,
                                        deadline_s, retry_budget,
                                        fault_injection, psk=psk,
                                        trace_dir=trace_dir_str)
        reports = {}
        for name in manifest.names:
            report_path = run_path / f"report_{name}.json"
            if not report_path.exists():
                raise OrchestrationError(
                    f"party {name!r} exited cleanly but wrote no report "
                    f"(stderr tail:\n{_stderr_tail(run_path, name)})",
                    failures=tuple(failures))
            reports[name] = PartyReport.from_json(report_path.read_text())
        result, digests = merge_reports(manifest, reports)
        elapsed = time.perf_counter() - started
        return OrchestratedRun(result=result, reports=reports,
                               transcript_digests=digests,
                               manifest=manifest,
                               elapsed_seconds=elapsed,
                               respawns=respawns,
                               failures=tuple(failures))
    finally:
        _reap(processes)
        if owns_dir and not keep_run_dir:
            shutil.rmtree(run_path, ignore_errors=True)


def _coerce_faults(faults, *, seed: int) -> FaultPlan:
    specs = tuple(spec if isinstance(spec, FaultSpec)
                  else parse_fault(str(spec), seed=seed)
                  for spec in faults)
    return FaultPlan(specs=specs, seed=seed)
