"""Socket runtime: party processes over TCP and a session orchestrator.

The in-process fabrics of :mod:`repro.net.transport` simulate a network
inside one interpreter; this package runs the same protocols across
*real OS processes* over loopback (or LAN) TCP:

- :mod:`repro.runtime.handshake` -- the versioned link handshake that
  binds (session id, party id, pair id, config digest, recovery epoch)
  before any protocol byte flows, so mismatched deployments fail fast
  instead of desyncing mid-protocol.
- :mod:`repro.runtime.manifest` -- the public run description every
  party process loads: party names, seeds, point counts, the protocol
  configuration, the port plan, the recovery knobs, and any planned
  faults.
- :mod:`repro.runtime.mirror` -- the mirrored-choreography channel that
  lets the existing two-sided protocol implementations run unchanged
  across a process boundary (see the module docstring for the execution
  model and its equivalence guarantee).
- :mod:`repro.runtime.party` -- the party program: loads one data
  partition, dials/accepts its mesh links, runs its driver pass and
  serves its peers' passes, checkpoints at every pass boundary, resumes
  deterministically from its checkpoint, and reports labels / ledger /
  stats / transcript digests.
- :mod:`repro.runtime.checkpoint` -- pass-boundary checkpoints and the
  replay transport that rebuilds a resumed party's state bit-for-bit.
- :mod:`repro.runtime.failure` -- classified ``failure_<name>.json``
  reports: the contract between a dying party and the supervisor.
- :mod:`repro.runtime.faults` -- the manifest-carried, seeded fault
  plan (kills, drops, delays, truncations, refused connections) that
  makes chaos runs as reproducible as fault-free ones.
- :mod:`repro.runtime.backoff` -- the one seeded-jitter exponential
  backoff shared by dial retries, in-party recovery, and re-spawns.
- :mod:`repro.runtime.orchestrator` -- spawns the party programs as
  subprocesses, allocates ports, supervises them (re-spawning retryable
  deaths with ``--resume`` under a bounded budget), collects the
  per-party reports, and merges them into the same result shape the
  in-process mesh returns.
- :mod:`repro.runtime.supervisor` -- thread-level party-program
  supervision used by tests and the threaded fabric: a dying program
  closes its channel with a diagnosis instead of leaving peers hung.
- :mod:`repro.runtime.daemon` -- the resident party daemon: one asyncio
  event loop per party, persistent pair links carrying *many*
  interleaved clustering sessions (session-tagged frames, demultiplexed
  into per-session future queues), one warmed crypto engine shared
  across sessions.
- :mod:`repro.runtime.client` -- the submission plane for daemon
  meshes: submit sessions, stream reports back, merge and cross-check
  them; plus the :class:`~repro.runtime.client.DaemonFleet` harness.
"""

from repro.runtime.client import (
    DaemonFleet,
    DaemonRun,
    SessionClient,
    SessionClientError,
    run_via_daemons,
)
from repro.runtime.daemon import (
    DaemonError,
    MeshSpec,
    PartyDaemon,
    mesh_digest,
)
from repro.runtime.checkpoint import (
    CheckpointDivergenceError,
    CheckpointError,
    PartyCheckpoint,
    load_checkpoint,
)
from repro.runtime.failure import FailureReport, load_failure
from repro.runtime.faults import FaultPlan, FaultSpec, parse_fault
from repro.runtime.handshake import HandshakeError, perform_handshake
from repro.runtime.manifest import (
    RunManifest,
    UnsupportedConfigError,
    manifest_digest,
)
from repro.runtime.orchestrator import (
    OrchestratedRun,
    OrchestrationError,
    orchestrate_run,
)
from repro.runtime.party import run_party

__all__ = [
    "CheckpointDivergenceError",
    "CheckpointError",
    "DaemonError",
    "DaemonFleet",
    "DaemonRun",
    "FailureReport",
    "FaultPlan",
    "FaultSpec",
    "HandshakeError",
    "MeshSpec",
    "OrchestratedRun",
    "OrchestrationError",
    "PartyCheckpoint",
    "PartyDaemon",
    "RunManifest",
    "SessionClient",
    "SessionClientError",
    "UnsupportedConfigError",
    "load_checkpoint",
    "load_failure",
    "manifest_digest",
    "mesh_digest",
    "orchestrate_run",
    "parse_fault",
    "perform_handshake",
    "run_party",
    "run_via_daemons",
]
