"""Versioned link handshake for the socket runtime.

Before any protocol byte flows on a TCP link, both ends exchange one
hello frame binding everything that must agree for the link to make
sense:

- the runtime **protocol version** (wire format + handshake layout);
- the **session id** (one orchestrated run = one session; a stray party
  from yesterday's run cannot join today's);
- the **pair id** (which unordered mesh pair this socket carries);
- the **party id** (which endpoint of the pair the peer claims to be);
- the **config digest** (SHA-256 over the canonical run manifest: party
  names, seeds, counts, every protocol parameter);
- the **epoch** (which link-up attempt of the session this is: 0 for
  the initial fleet, +1 per recovery cycle -- a stale process still
  holding last epoch's state cannot rejoin the recovered mesh).

A mismatch on any field raises :class:`HandshakeError` naming the field
and both values, and the connection closes cleanly -- the failure mode
is an immediate, diagnosable refusal, never a mid-protocol desync where
two differently-configured parties exchange ciphertexts that decrypt to
garbage three rounds later.

One hello field is *informational* rather than refused on mismatch:
``passes_done``, the sender's count of completed protocol passes.  After
a recovery the parties legitimately disagree (a re-spawned party may
have checkpointed fewer passes than a survivor), and the mesh resumes
at the *minimum* across all links -- see
:meth:`repro.runtime.party.PartyProcess` for the negotiation.
"""

from __future__ import annotations

import hmac
from dataclasses import dataclass, replace

from repro.net.framing import (
    FRAME_GOODBYE,
    FRAME_HELLO,
    ConnectionClosedError,
    FrameAuthenticationError,
    FramedConnection,
    FramingError,
)
from repro.net.serialization import (
    SerializationError,
    deserialize_message,
    serialize_message,
)

#: Bumped whenever the frame layout, the hello record, or the control
#: plane changes incompatibly.  2: the hello carries the recovery epoch
#: and the sender's completed-pass count.  3: the hello carries the
#: endpoint *role* (party / daemon / client) and the wire grows the
#: session-multiplexed ``m``/``c`` frame kinds.  4: the hello carries
#: an ``auth_tag`` (empty on unauthenticated links) and authenticated
#: links MAC every frame.
PROTOCOL_VERSION = 4

#: Endpoint roles carried in the v3 hello.  ``party`` is the PR-5
#: single-session party process (both ends of a mesh link).  ``daemon``
#: marks a resident multi-session daemon's pair links, where the hello
#: binds the *mesh spec* digest instead of a run manifest (sessions are
#: validated individually later, via per-session sync records).
#: ``client`` marks a session-submission connection into a daemon.
ROLE_PARTY = "party"
ROLE_DAEMON = "daemon"
ROLE_CLIENT = "client"


class HandshakeError(RuntimeError):
    """The peer's hello disagrees with ours; the link was refused.

    Attributes:
        field_name: which hello field mismatched (``None`` when the
            failure was not a field comparison -- e.g. a malformed
            frame).
        ours / theirs: the two values of the mismatched field, so a
            caller can react to *what* diverged (the recovery loop
            adopts the higher epoch instead of dying on a lower one).
    """

    def __init__(self, message: str, *, field_name: str | None = None,
                 ours=None, theirs=None):
        super().__init__(message)
        self.field_name = field_name
        self.ours = ours
        self.theirs = theirs


class HandshakePeerLost(HandshakeError):
    """The peer vanished mid-handshake (EOF/reset, no refusal record).

    Distinct from a refusal because it is *retryable*: a dialing party
    whose peer dropped the fresh connection (crash between accept and
    hello, an injected connection drop) re-dials instead of aborting
    the whole link-up.
    """


@dataclass(frozen=True)
class Hello:
    """One endpoint's handshake record.

    ``auth_tag`` is the v4 link-authentication field: on an
    authenticated link it is the hex HMAC (under the out-of-band PSK)
    over the record's nine *core* fields, computed by
    :meth:`authenticated` and verified by the validators.  It is
    belt-and-braces on top of the per-frame MAC -- it binds the hello's
    *content* under the PSK even if the framing layer is ever bypassed
    -- and stays empty (ignored) on unauthenticated links.
    """

    version: int
    session_id: str
    pair_left: str
    pair_right: str
    party_id: str
    config_digest: str
    epoch: int = 0
    passes_done: int = 0
    role: str = ROLE_PARTY
    auth_tag: str = ""

    def core_wire(self) -> bytes:
        """Serialized nine core fields -- what ``auth_tag`` signs."""
        return serialize_message([
            self.version, self.session_id, self.pair_left, self.pair_right,
            self.party_id, self.config_digest, self.epoch, self.passes_done,
            self.role,
        ])

    def authenticated(self, authenticator) -> "Hello":
        """Copy with ``auth_tag`` filled from the link authenticator."""
        if authenticator is None:
            return self
        tag = authenticator.tag(FRAME_HELLO, self.core_wire()).hex()
        return replace(self, auth_tag=tag)

    def auth_tag_valid(self, authenticator) -> bool:
        """Constant-time check of ``auth_tag`` against the PSK."""
        expected = authenticator.tag(FRAME_HELLO, self.core_wire()).hex()
        return hmac.compare_digest(self.auth_tag, expected)

    def to_wire(self) -> bytes:
        return serialize_message([
            self.version, self.session_id, self.pair_left, self.pair_right,
            self.party_id, self.config_digest, self.epoch, self.passes_done,
            self.role, self.auth_tag,
        ])

    @classmethod
    def from_wire(cls, payload: bytes) -> "Hello":
        try:
            fields = deserialize_message(payload)
        except (SerializationError, UnicodeDecodeError) as exc:
            raise HandshakeError(f"unreadable hello frame: {exc}") from exc
        # A v3 peer sends nine elements (no auth_tag); accept both
        # shapes so the mismatch surfaces as a clean "protocol version"
        # refusal instead of a malformed-record error.
        if (not isinstance(fields, list) or len(fields) not in (9, 10)
                or not isinstance(fields[0], int)
                or not all(isinstance(f, str) for f in fields[1:6])
                or not isinstance(fields[6], int)
                or not isinstance(fields[7], int)
                or not isinstance(fields[8], str)
                or (len(fields) == 10 and not isinstance(fields[9], str))):
            raise HandshakeError(
                f"malformed hello record: {fields!r}")
        return cls(version=fields[0], session_id=fields[1],
                   pair_left=fields[2], pair_right=fields[3],
                   party_id=fields[4], config_digest=fields[5],
                   epoch=fields[6], passes_done=fields[7],
                   role=fields[8],
                   auth_tag=fields[9] if len(fields) == 10 else "")


def perform_handshake(connection: FramedConnection, mine: Hello,
                      expected_peer: str) -> Hello:
    """Exchange hellos on a fresh link; validate or refuse.

    Both sides send first and read second (the frames cross in flight,
    so neither order can deadlock).  On any mismatch a goodbye frame
    with the refusal reason is sent best-effort before raising, so the
    peer's own handshake fails with the same diagnosis instead of a
    bare EOF.

    Returns the peer's hello: callers read ``passes_done`` from it (the
    one informational, never-refused field) to negotiate where a
    recovered mesh resumes.
    """
    mine = mine.authenticated(connection.authenticator)
    try:
        connection.write_frame(FRAME_HELLO, mine.to_wire())
    except (ConnectionClosedError, FramingError) as exc:
        raise HandshakePeerLost(
            f"{connection.name}: peer vanished during the handshake "
            f"({exc})") from exc
    theirs = read_hello(connection)
    _validate_symmetric(connection, mine, theirs, expected_peer)
    return theirs


def read_hello(connection: FramedConnection) -> Hello:
    """Read one hello frame; map EOF/goodbye to the handshake errors.

    Used directly by the daemon's accept loop, which must *read first*
    to learn the peer's role (mesh daemon vs session client) before it
    can decide how to answer.
    """
    try:
        kind, payload = connection.read_frame()
    except FrameAuthenticationError:
        # Not a vanished peer: the peer is present but fails the MAC
        # (tamper or PSK mismatch).  Let the classifier see the real
        # cause -- fatal, never retried.
        raise
    except (ConnectionClosedError, FramingError) as exc:
        raise HandshakePeerLost(
            f"{connection.name}: peer vanished during the handshake "
            f"({exc})") from exc
    if kind == FRAME_GOODBYE:
        raise HandshakeError(
            f"{connection.name}: peer refused the link: "
            f"{payload.decode('utf-8', 'replace')}")
    if kind != FRAME_HELLO:
        _refuse(connection,
                f"expected a hello frame, got kind {kind!r}")
    return Hello.from_wire(payload)


def answer_handshake(connection: FramedConnection, mine: Hello,
                     theirs: Hello, expected_peer: str) -> Hello:
    """Acceptor half of an asymmetric handshake.

    The daemon accept loop has already read the dialer's hello (to
    dispatch on its role); this validates it against ours and answers
    with our hello, refusing with a goodbye on any mismatch.  Paired
    with :func:`perform_handshake` on the dialing side, whose
    send-first/read-second shape is unchanged.
    """
    mine = mine.authenticated(connection.authenticator)
    _validate_symmetric(connection, mine, theirs, expected_peer)
    try:
        connection.write_frame(FRAME_HELLO, mine.to_wire())
    except (ConnectionClosedError, FramingError) as exc:
        raise HandshakePeerLost(
            f"{connection.name}: peer vanished during the handshake "
            f"({exc})") from exc
    return theirs


def hello_mismatch(mine: Hello, theirs: Hello, expected_peer: str,
                   authenticator=None) -> tuple[str, object, object] | None:
    """First binding mismatch between two symmetric hellos, or ``None``.

    Returns ``(field_name, ours, theirs)`` so both the sync
    :class:`~repro.net.framing.FramedConnection` path and the daemon's
    asyncio accept loop refuse with identical diagnostics.  The config
    digest is compared constant-time (it is the one field an attacker
    could usefully probe byte-by-byte); with an ``authenticator``, the
    peer's ``auth_tag`` must also verify under the shared PSK.
    """
    for field_name, ours_value, theirs_value in (
            ("protocol version", mine.version, theirs.version),
            ("session id", mine.session_id, theirs.session_id),
            ("pair", (mine.pair_left, mine.pair_right),
             (theirs.pair_left, theirs.pair_right)),
            ("epoch", mine.epoch, theirs.epoch),
            ("role", mine.role, theirs.role)):
        if ours_value != theirs_value:
            return field_name, ours_value, theirs_value
    if not hmac.compare_digest(mine.config_digest, theirs.config_digest):
        return "config digest", mine.config_digest, theirs.config_digest
    if theirs.party_id != expected_peer:
        return "party", expected_peer, theirs.party_id
    if authenticator is not None and not theirs.auth_tag_valid(authenticator):
        return "auth tag", "<valid HMAC under the shared PSK>", \
            theirs.auth_tag or "<missing>"
    return None


def client_hello_mismatch(theirs: Hello, config_digest: str,
                          authenticator=None,
                          ) -> tuple[str, object, object] | None:
    """What a daemon refuses on a client hello: version + spec digest.

    Client ids are unknown to the daemon in advance and scope nothing
    security-relevant, so they are never compared; per-session
    validation happens when a session is actually submitted.
    """
    if PROTOCOL_VERSION != theirs.version:
        return "protocol version", PROTOCOL_VERSION, theirs.version
    if not hmac.compare_digest(config_digest, theirs.config_digest):
        return "config digest", config_digest, theirs.config_digest
    if authenticator is not None and not theirs.auth_tag_valid(authenticator):
        return "auth tag", "<valid HMAC under the shared PSK>", \
            theirs.auth_tag or "<missing>"
    return None


def _validate_symmetric(connection: FramedConnection, mine: Hello,
                        theirs: Hello, expected_peer: str) -> None:
    mismatch = hello_mismatch(mine, theirs, expected_peer,
                              connection.authenticator)
    if mismatch is None:
        return
    field_name, ours_value, theirs_value = mismatch
    if field_name == "party":
        _refuse(connection,
                f"party mismatch: expected {ours_value!r} on the far "
                f"end, peer claims {theirs_value!r}",
                field_name=field_name, ours=ours_value,
                theirs=theirs_value)
    _refuse(connection,
            f"{field_name} mismatch: ours {ours_value!r}, "
            f"peer {theirs_value!r}",
            field_name=field_name, ours=ours_value, theirs=theirs_value)


def perform_client_handshake(connection: FramedConnection, *,
                             client_id: str, daemon_id: str,
                             config_digest: str) -> Hello:
    """Client side of a session-submission link into a daemon.

    The client binds the protocol version and the mesh-spec digest (not
    a run manifest -- sessions are validated individually when they are
    submitted).  The daemon's answer must carry its own party id with
    the ``daemon`` role and the same digest.
    """
    mine = Hello(version=PROTOCOL_VERSION, session_id="",
                 pair_left=client_id, pair_right=daemon_id,
                 party_id=client_id, config_digest=config_digest,
                 role=ROLE_CLIENT).authenticated(connection.authenticator)
    try:
        connection.write_frame(FRAME_HELLO, mine.to_wire())
    except (ConnectionClosedError, FramingError) as exc:
        raise HandshakePeerLost(
            f"{connection.name}: daemon vanished during the handshake "
            f"({exc})") from exc
    theirs = read_hello(connection)
    checks = [
        ("protocol version", PROTOCOL_VERSION, theirs.version,
         PROTOCOL_VERSION == theirs.version),
        ("role", ROLE_DAEMON, theirs.role, ROLE_DAEMON == theirs.role),
        ("config digest", config_digest, theirs.config_digest,
         hmac.compare_digest(config_digest, theirs.config_digest)),
        ("party", daemon_id, theirs.party_id,
         daemon_id == theirs.party_id),
    ]
    if connection.authenticator is not None:
        checks.append(
            ("auth tag", "<valid HMAC under the shared PSK>",
             theirs.auth_tag or "<missing>",
             theirs.auth_tag_valid(connection.authenticator)))
    for field_name, ours_value, theirs_value, matches in checks:
        if not matches:
            _refuse(connection,
                    f"{field_name} mismatch: ours {ours_value!r}, "
                    f"daemon {theirs_value!r}",
                    field_name=field_name, ours=ours_value,
                    theirs=theirs_value)
    return theirs


def answer_client_handshake(connection: FramedConnection, theirs: Hello,
                            *, daemon_id: str,
                            config_digest: str) -> Hello:
    """Daemon side of a session-submission link.

    ``theirs`` was already read by the accept loop.  The daemon cannot
    know client ids in advance, so only the version and the mesh-spec
    digest are refused on mismatch; the client id is whatever the
    client claims and scopes nothing security-relevant (per-session
    validation happens on submission).
    """
    mismatch = client_hello_mismatch(theirs, config_digest,
                                     connection.authenticator)
    if mismatch is not None:
        field_name, ours_value, theirs_value = mismatch
        _refuse(connection,
                f"{field_name} mismatch: ours {ours_value!r}, "
                f"client {theirs_value!r}",
                field_name=field_name, ours=ours_value,
                theirs=theirs_value)
    mine = Hello(version=PROTOCOL_VERSION, session_id="",
                 pair_left=theirs.pair_left, pair_right=theirs.pair_right,
                 party_id=daemon_id, config_digest=config_digest,
                 role=ROLE_DAEMON).authenticated(connection.authenticator)
    try:
        connection.write_frame(FRAME_HELLO, mine.to_wire())
    except (ConnectionClosedError, FramingError) as exc:
        raise HandshakePeerLost(
            f"{connection.name}: client vanished during the handshake "
            f"({exc})") from exc
    return theirs


def _refuse(connection: FramedConnection, reason: str, *,
            field_name: str | None = None, ours=None, theirs=None) -> None:
    try:
        connection.write_goodbye(f"handshake refused: {reason}")
    except ConnectionClosedError:
        pass
    connection.close()
    raise HandshakeError(f"{connection.name}: {reason}",
                         field_name=field_name, ours=ours, theirs=theirs)
