"""Versioned link handshake for the socket runtime.

Before any protocol byte flows on a TCP link, both ends exchange one
hello frame binding everything that must agree for the link to make
sense:

- the runtime **protocol version** (wire format + handshake layout);
- the **session id** (one orchestrated run = one session; a stray party
  from yesterday's run cannot join today's);
- the **pair id** (which unordered mesh pair this socket carries);
- the **party id** (which endpoint of the pair the peer claims to be);
- the **config digest** (SHA-256 over the canonical run manifest: party
  names, seeds, counts, every protocol parameter);
- the **epoch** (which link-up attempt of the session this is: 0 for
  the initial fleet, +1 per recovery cycle -- a stale process still
  holding last epoch's state cannot rejoin the recovered mesh).

A mismatch on any field raises :class:`HandshakeError` naming the field
and both values, and the connection closes cleanly -- the failure mode
is an immediate, diagnosable refusal, never a mid-protocol desync where
two differently-configured parties exchange ciphertexts that decrypt to
garbage three rounds later.

One hello field is *informational* rather than refused on mismatch:
``passes_done``, the sender's count of completed protocol passes.  After
a recovery the parties legitimately disagree (a re-spawned party may
have checkpointed fewer passes than a survivor), and the mesh resumes
at the *minimum* across all links -- see
:meth:`repro.runtime.party.PartyProcess` for the negotiation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.net.framing import (
    FRAME_GOODBYE,
    FRAME_HELLO,
    ConnectionClosedError,
    FramedConnection,
    FramingError,
)
from repro.net.serialization import (
    SerializationError,
    deserialize_message,
    serialize_message,
)

#: Bumped whenever the frame layout, the hello record, or the control
#: plane changes incompatibly.  2: the hello carries the recovery epoch
#: and the sender's completed-pass count.
PROTOCOL_VERSION = 2


class HandshakeError(RuntimeError):
    """The peer's hello disagrees with ours; the link was refused.

    Attributes:
        field_name: which hello field mismatched (``None`` when the
            failure was not a field comparison -- e.g. a malformed
            frame).
        ours / theirs: the two values of the mismatched field, so a
            caller can react to *what* diverged (the recovery loop
            adopts the higher epoch instead of dying on a lower one).
    """

    def __init__(self, message: str, *, field_name: str | None = None,
                 ours=None, theirs=None):
        super().__init__(message)
        self.field_name = field_name
        self.ours = ours
        self.theirs = theirs


class HandshakePeerLost(HandshakeError):
    """The peer vanished mid-handshake (EOF/reset, no refusal record).

    Distinct from a refusal because it is *retryable*: a dialing party
    whose peer dropped the fresh connection (crash between accept and
    hello, an injected connection drop) re-dials instead of aborting
    the whole link-up.
    """


@dataclass(frozen=True)
class Hello:
    """One endpoint's handshake record."""

    version: int
    session_id: str
    pair_left: str
    pair_right: str
    party_id: str
    config_digest: str
    epoch: int = 0
    passes_done: int = 0

    def to_wire(self) -> bytes:
        return serialize_message([
            self.version, self.session_id, self.pair_left, self.pair_right,
            self.party_id, self.config_digest, self.epoch, self.passes_done,
        ])

    @classmethod
    def from_wire(cls, payload: bytes) -> "Hello":
        try:
            fields = deserialize_message(payload)
        except (SerializationError, UnicodeDecodeError) as exc:
            raise HandshakeError(f"unreadable hello frame: {exc}") from exc
        if (not isinstance(fields, list) or len(fields) != 8
                or not isinstance(fields[0], int)
                or not all(isinstance(f, str) for f in fields[1:6])
                or not isinstance(fields[6], int)
                or not isinstance(fields[7], int)):
            raise HandshakeError(
                f"malformed hello record: {fields!r}")
        return cls(version=fields[0], session_id=fields[1],
                   pair_left=fields[2], pair_right=fields[3],
                   party_id=fields[4], config_digest=fields[5],
                   epoch=fields[6], passes_done=fields[7])


def perform_handshake(connection: FramedConnection, mine: Hello,
                      expected_peer: str) -> Hello:
    """Exchange hellos on a fresh link; validate or refuse.

    Both sides send first and read second (the frames cross in flight,
    so neither order can deadlock).  On any mismatch a goodbye frame
    with the refusal reason is sent best-effort before raising, so the
    peer's own handshake fails with the same diagnosis instead of a
    bare EOF.

    Returns the peer's hello: callers read ``passes_done`` from it (the
    one informational, never-refused field) to negotiate where a
    recovered mesh resumes.
    """
    try:
        connection.write_frame(FRAME_HELLO, mine.to_wire())
        kind, payload = connection.read_frame()
    except (ConnectionClosedError, FramingError) as exc:
        raise HandshakePeerLost(
            f"{connection.name}: peer vanished during the handshake "
            f"({exc})") from exc
    if kind == FRAME_GOODBYE:
        raise HandshakeError(
            f"{connection.name}: peer refused the link: "
            f"{payload.decode('utf-8', 'replace')}")
    if kind != FRAME_HELLO:
        _refuse(connection,
                f"expected a hello frame, got kind {kind!r}")
    theirs = Hello.from_wire(payload)
    for field_name, ours_value, theirs_value in (
            ("protocol version", mine.version, theirs.version),
            ("session id", mine.session_id, theirs.session_id),
            ("pair", (mine.pair_left, mine.pair_right),
             (theirs.pair_left, theirs.pair_right)),
            ("config digest", mine.config_digest, theirs.config_digest),
            ("epoch", mine.epoch, theirs.epoch)):
        if ours_value != theirs_value:
            _refuse(connection,
                    f"{field_name} mismatch: ours {ours_value!r}, "
                    f"peer {theirs_value!r}",
                    field_name=field_name, ours=ours_value,
                    theirs=theirs_value)
    if theirs.party_id != expected_peer:
        _refuse(connection,
                f"party mismatch: expected {expected_peer!r} on the far "
                f"end, peer claims {theirs.party_id!r}",
                field_name="party", ours=expected_peer,
                theirs=theirs.party_id)
    return theirs


def _refuse(connection: FramedConnection, reason: str, *,
            field_name: str | None = None, ours=None, theirs=None) -> None:
    try:
        connection.write_goodbye(f"handshake refused: {reason}")
    except ConnectionClosedError:
        pass
    connection.close()
    raise HandshakeError(f"{connection.name}: {reason}",
                         field_name=field_name, ours=ours, theirs=theirs)
