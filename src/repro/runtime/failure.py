"""Structured failure reports for the supervised session layer.

When a party process dies -- crash, injected fault, digest divergence,
exhausted recovery budget -- the bare exit code tells the orchestrator
almost nothing.  Before exiting on an error, the party program writes a
``failure_<name>.json`` into the run directory: which phase it was in
(link-up, replay, pass execution, checkpointing), the pass index and
recovery epoch, the peer and last frame label it was talking to, and a
*classification* the supervisor acts on:

- ``retryable`` -- transient process/network failures (a crash, a
  timeout, a lost connection).  The orchestrator re-spawns the party
  with ``--resume`` under the bounded retry budget.
- ``fatal`` -- determinism or configuration violations (replay digest
  divergence, a refused handshake on config/session fields, a corrupt
  checkpoint).  Retrying cannot help and could mask a correctness bug,
  so the run fails fast with the report attached.

The report is the contract between the two processes: the party
classifies (it knows *why* it died), the orchestrator decides (it knows
the budget).  A party that dies too hard to write a report -- SIGKILL,
``os._exit`` from an injected fault -- is classified from its exit code
alone, conservatively as retryable.
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import dataclass, field

#: Classifications the orchestrator's recovery loop understands.
RETRYABLE = "retryable"
FATAL = "fatal"

#: Causes, stable strings for tests and for the CLI summary.
CAUSE_CRASH = "crash"                       # nonzero exit, no report
CAUSE_TIMEOUT = "timeout"                   # peer silent past the deadline
CAUSE_CONNECTION_LOST = "connection-lost"   # EOF/reset mid-protocol
CAUSE_HANDSHAKE_REFUSED = "handshake-refused"
CAUSE_DESYNC = "desync"                     # protocol-level label mismatch
CAUSE_DIGEST_DIVERGENCE = "digest-divergence"
CAUSE_CHECKPOINT_INVALID = "checkpoint-invalid"
CAUSE_AUTH_FAILED = "auth-failed"           # frame MAC / PSK rejection
CAUSE_BUDGET_EXHAUSTED = "recovery-budget-exhausted"
CAUSE_INTERNAL = "internal-error"

_FATAL_CAUSES = frozenset({
    CAUSE_DESYNC,
    CAUSE_DIGEST_DIVERGENCE,
    CAUSE_CHECKPOINT_INVALID,
    CAUSE_HANDSHAKE_REFUSED,
    # A MAC failure is either an attacker or a misconfigured PSK;
    # re-dialing re-fails identically, so spending the recovery budget
    # on it would only delay (and blur) the diagnosis.
    CAUSE_AUTH_FAILED,
    # The party already spent its own in-process recovery cycles; a
    # re-spawn would just spend the orchestrator's budget re-exhausting
    # them.  Fail fast with the attempt history attached.
    CAUSE_BUDGET_EXHAUSTED,
})


def classification_of(cause: str) -> str:
    """Default classification for a cause string."""
    return FATAL if cause in _FATAL_CAUSES else RETRYABLE


@dataclass(frozen=True)
class FailureReport:
    """One party's account of why it died.

    ``phase`` is the coarse lifecycle stage (``link-up``, ``replay``,
    ``pass``, ``checkpoint``, ``report``); ``pass_index`` the number of
    passes completed when the failure hit; ``peer`` / ``last_frame`` the
    link and frame label in flight, when one was.
    """

    party: str
    cause: str
    classification: str
    message: str
    phase: str = "unknown"
    pass_index: int = 0
    epoch: int = 0
    peer: str | None = None
    last_frame: str | None = None
    attempts: tuple[dict, ...] = field(default_factory=tuple)

    def summary(self) -> str:
        where = f"pass {self.pass_index}, epoch {self.epoch}"
        link = f", peer {self.peer!r}" if self.peer else ""
        frame = f", frame {self.last_frame!r}" if self.last_frame else ""
        return (f"party {self.party!r} failed ({self.classification} "
                f"{self.cause}) during {self.phase} at {where}{link}"
                f"{frame}: {self.message}")

    def to_json(self) -> str:
        payload = {
            "party": self.party,
            "cause": self.cause,
            "classification": self.classification,
            "message": self.message,
            "phase": self.phase,
            "pass_index": self.pass_index,
            "epoch": self.epoch,
            "peer": self.peer,
            "last_frame": self.last_frame,
            "attempts": [dict(attempt) for attempt in self.attempts],
        }
        return json.dumps(payload, sort_keys=True, indent=2) + "\n"

    @classmethod
    def from_json(cls, payload: str) -> "FailureReport":
        data = json.loads(payload)
        return cls(
            party=data["party"],
            cause=data["cause"],
            classification=data["classification"],
            message=data["message"],
            phase=data.get("phase", "unknown"),
            pass_index=data.get("pass_index", 0),
            epoch=data.get("epoch", 0),
            peer=data.get("peer"),
            last_frame=data.get("last_frame"),
            attempts=tuple(dict(attempt)
                           for attempt in data.get("attempts", ())),
        )


def failure_path(run_dir: pathlib.Path, party: str) -> pathlib.Path:
    return pathlib.Path(run_dir) / f"failure_{party}.json"


def write_failure(run_dir: pathlib.Path, report: FailureReport) -> None:
    """Best-effort persist; a failing disk must not mask the original
    error (the exit code still carries the retryable/fatal split)."""
    try:
        failure_path(run_dir, report.party).write_text(report.to_json())
    except OSError:
        pass


def load_failure(run_dir: pathlib.Path,
                 party: str) -> FailureReport | None:
    path = failure_path(run_dir, party)
    if not path.exists():
        return None
    try:
        return FailureReport.from_json(path.read_text())
    except (json.JSONDecodeError, KeyError, TypeError):
        return None
