"""Thread-level supervision of party programs sharing one channel.

The threaded fabric lets two genuinely independent party programs run
over one :class:`~repro.net.channel.Channel` -- but before this module,
a program that *died* mid-protocol simply stopped sending, and its peer
sat in a blocking receive until the full transport timeout expired, with
an error that named neither the dead party nor how far the protocol got.

:func:`run_party_programs` fixes the shutdown ordering: the moment any
program raises, the channel is closed **with a diagnosis** (which party
died, the exception) *before* anything waits on the remaining threads.
Closing poisons the transport inboxes, so a peer parked in a blocking
receive fails immediately with a
:class:`~repro.net.transport.TransportClosedError` whose message carries
the dead party's name, the pair, and the last frame that made it across
-- the three facts needed to localize a desync without attaching a
debugger to a hung process.
"""

from __future__ import annotations

import threading
import time
from typing import Callable

from repro.net.transport import TransportClosedError


class PartyProgramError(RuntimeError):
    """One or more party programs died; carries the primary failure.

    Attributes:
        failures: ``{party_name: exception}`` in death order; the first
            entry is the root cause, later entries are usually the
            peers' induced :class:`TransportClosedError` fallout.
    """

    def __init__(self, message: str, failures: dict[str, BaseException]):
        super().__init__(message)
        self.failures = failures


def run_party_programs(channel,
                       programs: dict[str, Callable[[], object]], *,
                       join_timeout_s: float = 30.0) -> dict[str, object]:
    """Run each named party program on its own thread over ``channel``.

    Returns ``{party_name: return value}`` when every program completes.
    If any program raises, the channel is closed immediately with a
    diagnosis naming the dead party, the surviving programs fail fast
    (never hang), and a :class:`PartyProgramError` is raised whose
    message and ``failures`` dict lead with the root cause.

    ``join_timeout_s`` bounds only the wait *after a failure poisoned
    the channel* -- the window in which survivors are guaranteed to fail
    fast.  Healthy programs are waited on indefinitely: a long protocol
    run is not a hang, and nothing here can tell them apart before a
    failure exists.
    """
    results: dict[str, object] = {}
    failures: dict[str, BaseException] = {}
    order_lock = threading.Lock()

    def wrap(name: str, program: Callable[[], object]) -> None:
        try:
            results[name] = program()
        except BaseException as exc:  # noqa: BLE001 - supervision boundary
            with order_lock:
                first = not failures
                failures[name] = exc
            if first:
                # Shutdown ordering: diagnose-and-poison *before* anyone
                # waits, so peers blocked on this party fail fast with
                # the reason instead of timing out opaquely.
                channel.close(
                    reason=f"party {name!r} died: {exc.__class__.__name__}: "
                           f"{exc}")

    threads = [threading.Thread(target=wrap, args=item, daemon=True)
               for item in programs.items()]
    for thread in threads:
        thread.start()
    while True:
        for thread in threads:
            thread.join(timeout=0.05)
        if not any(thread.is_alive() for thread in threads):
            break
        if failures:
            # The channel is poisoned; survivors must now unblock within
            # the grace window or the close semantics are broken.
            deadline = time.monotonic() + join_timeout_s
            for thread in threads:
                remaining = deadline - time.monotonic()
                if remaining > 0:
                    thread.join(timeout=remaining)
            break
    hung = [thread for thread in threads if thread.is_alive()]
    if hung:
        raise PartyProgramError(
            f"{len(hung)} party program thread(s) still alive {join_timeout_s}s "
            f"after a failure poisoned the channel; this is a bug in the "
            f"transport's close semantics", failures)
    if failures:
        root_name, root_exc = next(iter(failures.items()))
        induced = [name for name, exc in failures.items()
                   if name != root_name
                   and isinstance(exc, TransportClosedError)]
        detail = (f"; induced teardown in {induced}" if induced else "")
        raise PartyProgramError(
            f"party {root_name!r} died mid-protocol: "
            f"{root_exc.__class__.__name__}: {root_exc}{detail}",
            failures) from root_exc
    return results
