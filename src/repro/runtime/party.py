"""The party program: one data holder as one networked OS process.

A party process owns exactly one partition of the data (loaded from its
own partition file; no shared memory with anyone), the public
:class:`~repro.runtime.manifest.RunManifest`, and one TCP link per mesh
pair it belongs to.  Its fault-tolerant life cycle:

1. **Link-up** -- create listening sockets for the pairs where it holds
   the lower mesh slot, dial (with manifest-configured retry/backoff)
   the pairs where it holds the higher slot, and run the versioned,
   epoch-tagged handshake on every link; any mismatch on a binding
   field refuses the link before protocol traffic.
2. **Resume negotiation** -- every hello carries the sender's
   completed-pass count; the mesh resumes at the *minimum* across all
   parties (full mesh: every party hears every other directly), so a
   party whose checkpoint ran ahead of a crashed peer rewinds to the
   shared boundary.
3. **Replay** -- when the negotiated resume pass is > 0, the party
   rebuilds all protocol state (sessions, RNG streams, labels, ledger,
   transcripts, stats) by re-executing the completed passes over a
   :class:`~repro.runtime.checkpoint.ReplayTransport` fed from its
   checkpointed wire view -- nothing touches the network, recomputed
   outbound frames are verified byte-for-byte, and any divergence is a
   fatal classified failure.
4. **Passes** -- the drivers take turns in manifest order, exactly like
   the in-process mesh.  After *every* completed pass the party writes
   an atomic checkpoint into the run directory, so a kill at any point
   loses at most the in-flight pass.
5. **Recovery** -- on any retryable failure (peer death, connection
   loss, timeout) the party closes every link with a ``recovering``
   goodbye (propagating the recovery wave to the whole mesh), bumps its
   epoch, and re-enters link-up, waiting for the dead peer's re-spawn.
   The cycle count is bounded by the manifest's ``recovery_budget``;
   fatal failures (desync, digest divergence, refused handshakes) stop
   immediately.  Either way a structured ``failure_<name>.json`` is
   written for the orchestrator (see :mod:`repro.runtime.failure`).
6. **Report** -- labels, the disclosure ledger, per-pair stats
   snapshots, transcript digests, and comparison counts are written as
   JSON for the orchestrator to merge.

Determinism contract: with the manifest's seeds, every observable -- the
wire bytes of every frame, both ends' transcripts, the ledger sequence,
the labels -- is bit-identical to
:func:`repro.multiparty.horizontal.run_multiparty_horizontal_dbscan`
over the same data on an in-process fabric, *including* runs that
crashed and recovered mid-way (property-tested in ``tests/runtime``).
"""

from __future__ import annotations

import json
import os
import pathlib
import socket
import threading
import time
from dataclasses import dataclass, field

from repro.core.distance import PeerCipherCache
from repro.core.leakage import Disclosure, LeakageEvent, LeakageLedger
from repro.multiparty.horizontal import _driver_pass, _peer_count
from repro.multiparty.mesh import derive_pair_rng
from repro.multiparty.scheduler import make_pass_executor
from repro.net.framing import (
    FRAME_CONTROL,
    FRAME_GOODBYE,
    ConnectionClosedError,
    FrameAuthenticationError,
    FrameAuthenticator,
    FramedConnection,
    FramingError,
    ReceiveTimeout,
)
from repro.net.party import Party
from repro.net.serialization import SerializationError, deserialize_message, \
    serialize_message
from repro.net.transcript import transcript_digest
from repro.net.transport import (
    ProtocolDesyncError,
    TcpTransport,
    TransportClosedError,
    TransportTimeoutError,
)
from repro.runtime.backoff import backoff_delay, jitter_rng
from repro.runtime.checkpoint import (
    CheckpointDivergenceError,
    CheckpointError,
    PartyCheckpoint,
    PassRecord,
    ReplayTransport,
    load_checkpoint,
    write_checkpoint,
)
from repro.runtime.failure import (
    CAUSE_AUTH_FAILED,
    CAUSE_BUDGET_EXHAUSTED,
    CAUSE_CHECKPOINT_INVALID,
    CAUSE_CONNECTION_LOST,
    CAUSE_DESYNC,
    CAUSE_DIGEST_DIVERGENCE,
    CAUSE_HANDSHAKE_REFUSED,
    CAUSE_INTERNAL,
    CAUSE_TIMEOUT,
    FATAL,
    RETRYABLE,
    FailureReport,
    write_failure,
)
from repro.runtime.faults import (
    FaultPlan,
    FaultyConnection,
    PartyFaults,
    refuse_first_accept,
)
from repro.runtime.handshake import (
    PROTOCOL_VERSION,
    HandshakeError,
    HandshakePeerLost,
    Hello,
    perform_handshake,
)
from repro.runtime.manifest import RunManifest, manifest_digest, pair_key
from repro.obs.trace import NULL_SPAN, tracer_for
from repro.runtime.mirror import MirrorChannel, MirrorChannelError
from repro.smc.session import SealedKeyProvider, SmcSession


class PartyRuntimeError(RuntimeError):
    """Link-up or pass-sequencing failure in a party process."""


class PeerLostError(PartyRuntimeError):
    """A peer died, dropped the link, or announced recovery: retryable."""

    def __init__(self, message: str, *, peer: str | None = None,
                 frame: str | None = None):
        super().__init__(message)
        self.peer = peer
        self.frame = frame


class LinkupTimeoutError(PartyRuntimeError):
    """A link could not be (re-)established within the manifest budget.

    Retryable: during recovery the missing peer may still be waiting on
    its re-spawn; the next cycle (bounded by ``recovery_budget``) waits
    again.
    """


class _EpochOutdated(Exception):
    """A peer's hello carried a higher recovery epoch than ours.

    The mesh has recovered past us (connection-drop recoveries bump
    survivor epochs without any orchestrator involved); adopt the
    higher epoch and re-enter link-up.  Not a failure -- adoption does
    not consume recovery budget, and it terminates because epochs only
    ever rise through budget-bounded recoveries.
    """

    def __init__(self, epoch: int):
        super().__init__(f"mesh is at epoch {epoch}")
        self.epoch = epoch


CONTROL_QUERY = "query"
CONTROL_END_PASS = "end_pass"

_BIND_ATTEMPTS = 10
#: Per-TCP-connect timeout inside the dial loop (the loop's *total*
#: budget is the manifest's ``connect_timeout_s``).
_CONNECT_ATTEMPT_S = 2.0


def classify_exception(exc: BaseException) -> tuple[str, str]:
    """Map a failure to its (cause, classification) for the supervisor.

    Order matters: the framing/transport hierarchies overlap
    (``ReceiveTimeout`` and ``ConnectionClosedError`` subclass
    ``FramingError``; ``TransportTimeoutError`` subclasses
    ``ProtocolDesyncError``; ``HandshakePeerLost`` subclasses
    ``HandshakeError``), so the retryable leaves are matched before
    their fatal ancestors.
    """
    if isinstance(exc, CheckpointDivergenceError):
        return CAUSE_DIGEST_DIVERGENCE, FATAL
    if isinstance(exc, CheckpointError):
        return CAUSE_CHECKPOINT_INVALID, FATAL
    # Before every retryable branch: FrameAuthenticationError subclasses
    # FramingError, and an auth failure (tamper or PSK mismatch) re-fails
    # identically on every retry -- fatal, never charged to the budget.
    if isinstance(exc, FrameAuthenticationError):
        return CAUSE_AUTH_FAILED, FATAL
    if isinstance(exc, HandshakePeerLost):
        return CAUSE_CONNECTION_LOST, RETRYABLE
    if isinstance(exc, HandshakeError):
        return CAUSE_HANDSHAKE_REFUSED, FATAL
    if isinstance(exc, (TransportTimeoutError, ReceiveTimeout,
                        LinkupTimeoutError)):
        return CAUSE_TIMEOUT, RETRYABLE
    if isinstance(exc, (TransportClosedError, ConnectionClosedError,
                        PeerLostError)):
        return CAUSE_CONNECTION_LOST, RETRYABLE
    if isinstance(exc, (ProtocolDesyncError, MirrorChannelError,
                        FramingError, SerializationError)):
        return CAUSE_DESYNC, FATAL
    return CAUSE_INTERNAL, FATAL


@dataclass
class _PairRuntime:
    """One link: connection, live transport, mirrored channel, session.

    ``channel``/``session``/``parties`` are filled after the resume
    negotiation (the channel may start on a replay transport);
    ``connection``/``transport`` are ``None`` in the offline-rebuild
    path, where a fully-checkpointed party reconstructs its report with
    no peers left to talk to.
    """

    left: str
    right: str
    peer: str
    connection: FramedConnection | None
    transport: TcpTransport | None
    channel: MirrorChannel | None = None
    session: SmcSession | None = None
    parties: dict[str, Party] = field(default_factory=dict)


@dataclass(frozen=True)
class PartyReport:
    """What one party process hands back to the orchestrator.

    ``elapsed_seconds`` covers the whole run (link-up, key derivation
    and exchange, passes, and any recovery cycles); ``passes_seconds``
    covers only the protocol passes of the final successful attempt, so
    benchmarks can separate socket/round-trip cost from one-time setup.

    ``runtime_info`` is an optional, runtime-specific diagnostics dict
    (absent on PR-5-era reports, tolerated by ``from_json``).  The
    daemon runtime reports per-session amortization figures there:
    whether the session warm-started on an already-warmed engine,
    setup vs pass timings, and the randomness-pool hit/miss counts from
    ``SmcSession.pool_report()``.
    """

    party: str
    labels: tuple[int, ...]
    ledger_events: tuple[tuple[str, str, str, str], ...]
    pair_reports: dict
    elapsed_seconds: float
    passes_seconds: float
    runtime_info: dict = field(default_factory=dict)

    def to_json(self) -> str:
        payload = {
            "party": self.party,
            "labels": list(self.labels),
            "ledger_events": [list(event) for event in self.ledger_events],
            "pair_reports": self.pair_reports,
            "elapsed_seconds": self.elapsed_seconds,
            "passes_seconds": self.passes_seconds,
        }
        if self.runtime_info:
            payload["runtime_info"] = self.runtime_info
        return json.dumps(payload, sort_keys=True) + "\n"

    @classmethod
    def from_json(cls, payload: str) -> "PartyReport":
        data = json.loads(payload)
        return cls(
            party=data["party"],
            labels=tuple(data["labels"]),
            ledger_events=tuple(tuple(event)
                                for event in data["ledger_events"]),
            pair_reports=data["pair_reports"],
            elapsed_seconds=data["elapsed_seconds"],
            passes_seconds=data["passes_seconds"],
            runtime_info=data.get("runtime_info", {}),
        )

    def ledger(self) -> LeakageLedger:
        ledger = LeakageLedger()
        for protocol, learner, disclosure, detail in self.ledger_events:
            ledger.events.append(LeakageEvent(
                protocol=protocol, learner=learner,
                disclosure=Disclosure(disclosure), detail=detail))
        return ledger


class _LocalMeshView:
    """The ``PartyMesh`` surface of one party's k-1 mirrored links.

    Implements exactly the methods the driver-pass machinery touches
    (``peers_of`` / ``session_between`` / ``party_in_pair`` /
    ``pair_channel`` / ``begin_peer_query``), with ``begin_peer_query``
    emitting the control frame the remote responder is waiting on
    (suppressed during replay -- nobody is listening to history).
    """

    def __init__(self, process: "PartyProcess"):
        self._process = process

    def peers_of(self, name: str) -> list[str]:
        return self._process.manifest.peers_of(name)

    def _pair(self, a: str, b: str) -> _PairRuntime:
        local = self._process.name
        peer = b if a == local else a
        try:
            return self._process.pairs[peer]
        except KeyError:
            raise PartyRuntimeError(
                f"no link between {a!r} and {b!r} in process "
                f"{local!r}") from None

    def session_between(self, a: str, b: str) -> SmcSession:
        return self._pair(a, b).session

    def party_in_pair(self, name: str, peer: str) -> Party:
        return self._pair(name, peer).parties[name]

    def pair_channel(self, a: str, b: str) -> MirrorChannel:
        return self._pair(a, b).channel

    def begin_peer_query(self, driver_name: str, peer_name: str) -> None:
        self._process.announce_query(peer_name)


class PartyProcess:
    """One party's full fault-tolerant runtime over real sockets."""

    def __init__(self, manifest: RunManifest, name: str,
                 points: list[tuple[int, ...]], *,
                 run_dir: pathlib.Path | None = None,
                 resume_from: PartyCheckpoint | None = None,
                 epoch: int = 0,
                 fail_after_queries: int | None = None,
                 psk: str | None = None,
                 bind_host: str | None = None,
                 trace_dir: str | pathlib.Path | None = None):
        manifest.slot_of(name)
        if len(points) != manifest.counts[name]:
            raise PartyRuntimeError(
                f"partition for {name!r} has {len(points)} points but the "
                f"manifest declares {manifest.counts[name]}")
        for point in points:
            if len(point) != manifest.dimensions:
                raise PartyRuntimeError(
                    f"point {point!r} has {len(point)} dimensions, "
                    f"manifest declares {manifest.dimensions}")
        self.manifest = manifest
        self.name = name
        self.points = [tuple(point) for point in points]
        # Multi-host meshes listen on an interface (e.g. "0.0.0.0")
        # different from the address peers dial; loopback runs leave it
        # None and bind the manifest host as before.
        self.bind_host = bind_host
        if manifest.link_auth and not psk:
            raise PartyRuntimeError(
                f"manifest for session {manifest.session_id!r} requires "
                f"link authentication but no pre-shared key was provided "
                f"(pass psk=... / --psk / REPRO_PSK)")
        # The PSK never enters the manifest; the session id is the MAC
        # context, so a frame captured from another session (same PSK)
        # fails verification here.
        self._authenticator = (FrameAuthenticator(psk, manifest.session_id)
                               if manifest.link_auth else None)
        self.run_dir = (pathlib.Path(run_dir)
                        if run_dir is not None else None)
        self.pairs: dict[str, _PairRuntime] = {}
        self.epoch = epoch
        self._digest = manifest_digest(manifest)
        self._checkpoint = resume_from
        self.passes_done = (resume_from.passes_done
                            if resume_from is not None else 0)
        self._fault_plan = FaultPlan.from_dicts(manifest.faults)
        self._faults = self._fault_plan.for_party(name, epoch)
        self._recoveries = 0
        self._recovery_rng = jitter_rng(manifest.seed_of(name),
                                        "recovery", name)
        self._phase = "init"
        self._replaying = False
        self._ledger = LeakageLedger()
        self._labels: tuple[int, ...] | None = None
        self._pass_records: list[PassRecord] = []
        # begin_peer_query fires from scheduler worker threads under
        # concurrent_peers, so the fault-injection counters are locked.
        self._query_lock = threading.Lock()
        self._queries_seen = 0
        self._queries_in_pass = 0
        self._fail_after_queries = fail_after_queries
        # Observation only: spans record sizes and timings, never frame
        # bytes or plaintexts, so tracing cannot disturb bit-identity.
        self.tracer = tracer_for(trace_dir, name)
        self._session_span = NULL_SPAN

    # -- link-up -----------------------------------------------------------

    def _hello(self, left: str, right: str) -> Hello:
        return Hello(version=PROTOCOL_VERSION,
                     session_id=self.manifest.session_id,
                     pair_left=left, pair_right=right,
                     party_id=self.name, config_digest=self._digest,
                     epoch=self.epoch, passes_done=self.passes_done)

    def _listen(self, port: int, pair: str) -> socket.socket:
        last_error: OSError | None = None
        for attempt in range(_BIND_ATTEMPTS):
            listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            try:
                listener.bind((self.bind_host or self.manifest.host, port))
                listener.listen(1)
                return listener
            except OSError as exc:
                listener.close()
                last_error = exc
                time.sleep(0.05 * (attempt + 1))
        raise PartyRuntimeError(
            f"{self.name!r} could not bind port {port} for pair {pair} "
            f"after {_BIND_ATTEMPTS} attempts: {last_error}")

    def _make_connection(self, sock: socket.socket,
                         key: str) -> FramedConnection:
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        name = f"{self.name}@{key}"
        frame_specs = self._faults.frame_specs(key)
        if frame_specs:
            return FaultyConnection(
                sock, specs=frame_specs,
                state=lambda: self.passes_done,
                timeout_s=self.manifest.timeout_s, name=name,
                authenticator=self._authenticator)
        return FramedConnection(sock, timeout_s=self.manifest.timeout_s,
                                name=name,
                                authenticator=self._authenticator)

    def _handshake_and_register(self, sock: socket.socket, left: str,
                                right: str, expected_peer: str) -> Hello:
        key = pair_key(left, right)
        connection = self._make_connection(sock, key)
        try:
            theirs = perform_handshake(connection, self._hello(left, right),
                                       expected_peer)
        except (HandshakePeerLost, FrameAuthenticationError):
            connection.close()
            raise
        transport = TcpTransport(left, right, connection,
                                 local_name=self.name)
        self.pairs[expected_peer] = _PairRuntime(
            left=left, right=right, peer=expected_peer,
            connection=connection, transport=transport)
        return theirs

    def _handle_link_refusal(self, exc: HandshakeError) -> None:
        """Re-raise unless the refusal is epoch skew we can ride out."""
        if exc.field_name != "epoch":
            raise exc
        if isinstance(exc.theirs, int) and exc.theirs > self.epoch:
            raise _EpochOutdated(exc.theirs) from exc
        # The peer is behind: it read our hello, is adopting our epoch,
        # and will reconnect -- retry the link.

    def _dial_link(self, left: str, right: str) -> Hello:
        manifest = self.manifest
        key = pair_key(left, right)
        deadline = time.monotonic() + manifest.connect_timeout_s
        rng = jitter_rng(manifest.seed_of(self.name), "dial", key,
                         self.epoch)
        last_error: Exception | None = None
        for attempt in range(manifest.connect_retries):
            if attempt > 0 and time.monotonic() >= deadline:
                break
            try:
                sock = socket.create_connection(
                    (manifest.host, manifest.ports[key]),
                    timeout=min(_CONNECT_ATTEMPT_S,
                                manifest.connect_timeout_s))
            except OSError as exc:
                last_error = exc
                time.sleep(backoff_delay(manifest.backoff_base_s, attempt,
                                         rng))
                continue
            try:
                return self._handshake_and_register(sock, left, right,
                                                    expected_peer=left)
            except HandshakePeerLost as exc:
                last_error = exc
            except HandshakeError as exc:
                self._handle_link_refusal(exc)
                last_error = exc
            time.sleep(backoff_delay(manifest.backoff_base_s, attempt, rng))
        raise LinkupTimeoutError(
            f"{self.name!r} could not link pair {key} (dialing port "
            f"{manifest.ports[key]}) within {manifest.connect_timeout_s}s /"
            f" {manifest.connect_retries} attempts at epoch {self.epoch}: "
            f"{last_error}")

    def _accept_link(self, listener: socket.socket, left: str, right: str,
                     expected_peer: str) -> Hello:
        manifest = self.manifest
        key = pair_key(left, right)
        deadline = time.monotonic() + manifest.connect_timeout_s
        last_error: Exception | None = None
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise LinkupTimeoutError(
                    f"{self.name!r} waited {manifest.connect_timeout_s}s "
                    f"on port {manifest.ports[key]} for {expected_peer!r} "
                    f"to dial pair {key} at epoch {self.epoch}; it never "
                    f"linked up ({last_error})")
            listener.settimeout(remaining)
            try:
                sock, _ = listener.accept()
            except socket.timeout:
                continue
            try:
                return self._handshake_and_register(sock, left, right,
                                                    expected_peer)
            except HandshakePeerLost as exc:
                last_error = exc
            except HandshakeError as exc:
                self._handle_link_refusal(exc)
                last_error = exc

    def _establish_links(self) -> dict[str, int]:
        """Listen (lower slot) / dial (higher slot) + handshake per pair.

        All listeners are created before any dial, so dial-with-retry
        converges as soon as every process has started; every handshake
        is send-then-read, so the hello frames cross in flight and no
        ordering of the k processes can deadlock the link-up.  Returns
        each peer's hello-carried completed-pass count for the resume
        negotiation.
        """
        manifest = self.manifest
        listeners: dict[str, tuple[socket.socket, str]] = {}
        peer_passes: dict[str, int] = {}
        for left, right in manifest.pairs_of(self.name):
            key = pair_key(left, right)
            if self.name == left:
                listeners[key] = (self._listen(manifest.ports[key], key),
                                  right)
        try:
            for left, right in manifest.pairs_of(self.name):
                if self.name != right:
                    continue
                theirs = self._dial_link(left, right)
                peer_passes[left] = theirs.passes_done
            for left, right in manifest.pairs_of(self.name):
                key = pair_key(left, right)
                if self.name != left:
                    continue
                listener, expected = listeners[key]
                listener.settimeout(manifest.connect_timeout_s)
                refuse_first_accept(listener, self._faults, key)
                theirs = self._accept_link(listener, left, right, expected)
                peer_passes[expected] = theirs.passes_done
        except BaseException:
            self._close_all(goodbye=False)
            raise
        finally:
            for listener, _ in listeners.values():
                listener.close()
        return peer_passes

    # -- channels / sessions ----------------------------------------------

    def _bind_channels(self, resume_pass: int) -> None:
        """One mirrored channel per pair -- over the recorded wire view
        when resuming (live transports take over after replay)."""
        frames = (self._checkpoint.frames_up_to(resume_pass)
                  if resume_pass > 0 else {})
        for pair in self.pairs.values():
            key = pair_key(pair.left, pair.right)
            if resume_pass > 0:
                transport = ReplayTransport(pair.left, pair.right,
                                            self.name,
                                            frames.get(key, []))
            else:
                transport = pair.transport
            pair.channel = MirrorChannel(pair.left, pair.right, self.name,
                                         transport)

    def build_sessions(self) -> None:
        """Sessions in *global* pair order: deadlock-free key exchange.

        Each link's key exchange blocks only on the peer's opening frame
        for that link, and every process visits its links in the shared
        global order -- so the smallest not-yet-built pair always has
        both owners working on it, and link-up progresses.  Key material
        is *sealed*: this process derives only its OWN slot's keypair
        from the shared ``key_seed`` (exactly as ``PartyMesh`` derives
        that slot, so its announced public key -- and everything
        encrypted under it -- matches the in-process run byte for byte);
        every peer's context starts as a placeholder whose private half
        is a :class:`~repro.crypto.sealed.SealedPaillierPrivateKey`
        holding no secret at all.  The session's key exchange then
        captures each peer's authentic public key from the wire and
        pins it against the manifest's ``key_digests``.  On resume the
        exchange replays from the recorded view: the identical frames,
        no new traffic.
        """
        config = self.manifest.protocol_config()
        provider = SealedKeyProvider(config.smc, self.name,
                                     key_digests=self.manifest.key_digests)
        contexts = {
            name: provider.context_for(name, slot)
            for slot, name in enumerate(self.manifest.names)
        }
        for left, right in self.manifest.pairs():
            if self.name not in (left, right):
                continue
            pair = self.pairs[right if self.name == left else left]
            channel = pair.channel
            left_party = Party(channel.left, derive_pair_rng(
                self.manifest.seed_of(left), left, left, right,
                namespace=self.manifest.rng_namespace))
            right_party = Party(channel.right, derive_pair_rng(
                self.manifest.seed_of(right), right, left, right,
                namespace=self.manifest.rng_namespace))
            pair.parties = {left: left_party, right: right_party}
            pair.session = SmcSession(left_party, right_party, config.smc,
                                      preset_contexts=contexts)

    # -- control plane -----------------------------------------------------

    def announce_query(self, peer: str) -> None:
        if self._replaying:
            return
        self._count_query()
        try:
            self.pairs[peer].connection.write_frame(
                FRAME_CONTROL, serialize_message([CONTROL_QUERY]))
        except ConnectionClosedError as exc:
            raise PeerLostError(
                f"{self.name!r} lost peer {peer!r} while announcing a "
                f"query: {exc}", peer=peer, frame="control/query") from exc

    def _count_query(self) -> None:
        with self._query_lock:
            self._queries_seen += 1
            self._queries_in_pass += 1
            seen = self._queries_seen
            in_pass = self._queries_in_pass
            fired = self._faults.on_query(self.passes_done, in_pass)
        if (self._fail_after_queries is not None
                and seen > self._fail_after_queries):
            # Legacy failure-injection hook (pre-FaultPlan): die the way
            # a crashed process dies -- no goodbye, no cleanup.
            print(f"[fault injection] {self.name} dying after "
                  f"{self._fail_after_queries} queries", flush=True)
            os._exit(13)
        self._apply_fired_faults(
            fired, f"mid-pass at {self.passes_done} passes, query {in_pass}")

    def _apply_fired_faults(self, fired, context: str) -> None:
        for spec in fired:
            if spec.kind == "kill":
                PartyFaults.die(spec, context)
        for spec in fired:
            if spec.kind == "drop":
                pair = self._pair_by_key(spec.pair_key())
                if pair is not None and pair.connection is not None:
                    # Abrupt close, no goodbye: the peer sees a bare
                    # EOF, exactly like a crashed network path.
                    pair.connection.close()
                raise PeerLostError(
                    f"[fault injection] {self.name} dropped link "
                    f"{spec.pair_key()} {context}",
                    peer=pair.peer if pair else None)

    def _pair_by_key(self, key: str | None) -> _PairRuntime | None:
        for pair in self.pairs.values():
            if pair_key(pair.left, pair.right) == key:
                return pair
        return None

    def _read_control(self, pair: _PairRuntime) -> list:
        while True:
            try:
                kind, payload = pair.connection.read_frame()
                break
            except ReceiveTimeout:
                # Waiting for the next control frame is idle *by
                # design*: the driver may legitimately spend longer than
                # any per-message timeout querying its other peers or
                # computing locally.  Liveness does not suffer -- a dead
                # peer surfaces immediately as EOF/reset below, and a
                # hung-but-alive fleet is bounded by the orchestrator's
                # run deadline (or the operator, for hand-run parties).
                continue
            except FrameAuthenticationError:
                # Fatal, not a lost peer: the classifier must see the
                # auth failure, not a retryable connection loss.
                raise
            except (ConnectionClosedError, FramingError) as exc:
                raise PeerLostError(
                    f"{self.name!r} lost peer {pair.peer!r} while waiting "
                    f"for a control frame: {exc}", peer=pair.peer,
                    frame="control") from exc
        if kind == FRAME_GOODBYE:
            raise PeerLostError(
                f"peer {pair.peer!r} closed the link "
                f"({payload.decode('utf-8', 'replace')!r}) while "
                f"{self.name!r} awaited its next query", peer=pair.peer,
                frame="goodbye") from None
        if kind != FRAME_CONTROL:
            raise PartyRuntimeError(
                f"{self.name!r} expected a control frame from "
                f"{pair.peer!r}, got kind {kind!r} (protocol frames must "
                f"not precede the query announcement)")
        try:
            record = deserialize_message(payload)
        except (SerializationError, UnicodeDecodeError) as exc:
            raise PartyRuntimeError(
                f"unreadable control frame from {pair.peer!r}: "
                f"{exc}") from exc
        if (not isinstance(record, list) or not record
                or record[0] not in (CONTROL_QUERY, CONTROL_END_PASS)):
            raise PartyRuntimeError(
                f"malformed control record from {pair.peer!r}: {record!r}")
        return record

    # -- the supervised run ------------------------------------------------

    def run(self) -> PartyReport:
        """Execute (or resume) the session, recovering from retryable
        failures until the manifest's recovery budget runs out."""
        started = time.perf_counter()
        attempts: list[dict] = []
        while True:
            try:
                return self._attempt(started)
            except _EpochOutdated as outdated:
                self._close_all("recovering: adopting mesh epoch")
                self.epoch = max(self.epoch, outdated.epoch)
                self._reset_to_checkpoint()
                continue
            except (KeyboardInterrupt, SystemExit):
                raise
            except Exception as exc:
                cause, classification = classify_exception(exc)
                attempts.append({"epoch": self.epoch, "phase": self._phase,
                                 "cause": cause,
                                 "error": str(exc)[:400]})
                if classification == FATAL:
                    self._fail(cause, FATAL, str(exc), attempts, exc)
                    self._close_all(f"fatal: {cause}")
                    raise
                budget = self.manifest.recovery_budget
                if self._recoveries >= budget:
                    message = (f"{self.name!r}: recovery budget of "
                               f"{budget} exhausted at epoch {self.epoch} "
                               f"(last failure: {cause}: {exc})")
                    self._fail(CAUSE_BUDGET_EXHAUSTED, FATAL, message,
                               attempts, exc)
                    self._close_all("recovery budget exhausted")
                    raise PartyRuntimeError(message) from exc
                self._recoveries += 1
                print(f"[recovery] {self.name}: {cause} at epoch "
                      f"{self.epoch} ({self._phase}); starting cycle "
                      f"{self._recoveries}/{budget}", flush=True)
                self._close_all("recovering")
                self.epoch += 1
                self._reset_to_checkpoint()
                time.sleep(backoff_delay(self.manifest.backoff_base_s,
                                         self._recoveries,
                                         self._recovery_rng))

    def _attempt(self, started: float) -> PartyReport:
        manifest = self.manifest
        total_passes = len(manifest.names)
        self._faults = self._fault_plan.for_party(self.name, self.epoch)
        self.pairs = {}
        self._ledger = LeakageLedger()
        self._labels = None
        self._pass_records = []
        self._replaying = False
        with self._query_lock:
            self._queries_in_pass = 0

        if self.passes_done >= total_passes:
            # Every pass is already checkpointed (the process died
            # between its final checkpoint and its report); the peers
            # have finished and exited, so rebuild entirely offline.
            self._register_offline_pairs()
            resume_pass = total_passes
        else:
            self._phase = "link-up"
            peer_passes = self._establish_links()
            resume_pass = min([self.passes_done, *peer_passes.values()])
            self.passes_done = resume_pass

        config = manifest.protocol_config()
        view = _LocalMeshView(self)
        # The placeholder partitions: public counts, all-zero coordinates
        # (see RunManifest.placeholder_points / the mirror docstring).
        points_view = {name: (self.points if name == self.name
                              else manifest.placeholder_points(name))
                       for name in manifest.names}

        self._bind_channels(resume_pass)
        executor = make_pass_executor(
            config.concurrent_peers, config.peer_workers,
            expected_tasks=max(1, len(manifest.names) - 1))
        passes_started = time.perf_counter()
        self._session_span = self.tracer.span(
            "session", manifest.session_id, epoch=self.epoch,
            resume_pass=resume_pass, recoveries=self._recoveries,
            parties=len(manifest.names), points=len(self.points))
        try:
            self._phase = "session"
            self.build_sessions()
            if resume_pass > 0:
                self._phase = "replay"
                self._replay_passes(resume_pass, view, points_view, config,
                                    executor)
            self._phase = "pass"
            for pass_index in range(resume_pass, total_passes):
                self._run_pass(pass_index, view, points_view, config,
                               executor)
        finally:
            executor.close()
            self._session_span.close()
            self._session_span = NULL_SPAN

        self._phase = "report"
        finished = time.perf_counter()
        report = self._build_report(self._labels or (), self._ledger,
                                    elapsed=finished - started,
                                    passes=finished - passes_started)
        self._teardown()
        return report

    def _register_offline_pairs(self) -> None:
        for left, right in self.manifest.pairs():
            if self.name not in (left, right):
                continue
            peer = right if self.name == left else left
            self.pairs[peer] = _PairRuntime(
                left=left, right=right, peer=peer,
                connection=None, transport=None)

    # -- passes ------------------------------------------------------------

    def _run_pass(self, pass_index: int, view: _LocalMeshView,
                  points_view: dict, config, executor) -> None:
        manifest = self.manifest
        driver = manifest.names[pass_index]
        with self._query_lock:
            self._queries_in_pass = 0
        role = "drive" if driver == self.name else "respond"
        with self._session_span.child("pass", f"pass{pass_index}",
                                      index=pass_index, role=role,
                                      driver=driver) as pass_span:
            if driver == self.name:
                caches = ({peer: PeerCipherCache()
                           for peer in view.peers_of(driver)}
                          if config.cache_peer_ciphertexts else None)
                result = _driver_pass(view, driver, points_view, config,
                                      manifest.value_bound, self._ledger,
                                      caches, executor)
                self._labels = result.as_tuple()
                served = 0
                for peer in view.peers_of(driver):
                    try:
                        self.pairs[peer].connection.write_frame(
                            FRAME_CONTROL,
                            serialize_message([CONTROL_END_PASS]))
                    except ConnectionClosedError as exc:
                        raise PeerLostError(
                            f"{self.name!r} lost peer {peer!r} while "
                            f"ending its pass: {exc}", peer=peer,
                            frame="control/end_pass") from exc
            else:
                served = self._respond_pass(driver, config)
                pass_span.set(served=served)
        self.passes_done = pass_index + 1
        self._record_pass(driver, served)
        self._phase = "checkpoint"
        self._write_checkpoint()
        self._phase = "pass"
        with self._query_lock:
            fired = self._faults.at_boundary(self.passes_done)
        self._apply_fired_faults(
            fired, f"at boundary {self.passes_done}")

    def _respond_pass(self, driver: str, config) -> int:
        """Serve one remote driver's pass on our shared link.

        Each announced query runs the *same* ``_peer_count`` choreography
        the driver runs, with a placeholder query point; the mirror
        substitutes every driver-side frame with the authentic one.  The
        locally-computed count and disclosures belong to the driver's
        view and are discarded -- the driver's process records them from
        authentic data.  Returns how many queries were served (the
        checkpoint needs it: control frames are not part of the
        transcript, so replay re-serves from this count).
        """
        if driver not in self.pairs:
            return 0
        pair = self.pairs[driver]
        # A driver skips empty peers entirely, so a party with no points
        # only ever sees the end-of-pass marker here.
        cache = (PeerCipherCache() if config.cache_peer_ciphertexts
                 else None)
        discard = LeakageLedger()
        placeholder = tuple([0] * self.manifest.dimensions)
        label = f"multiparty/{driver}-{self.name}"
        served = 0
        while True:
            record = self._read_control(pair)
            if record[0] == CONTROL_END_PASS:
                return served
            served += 1
            self._count_query()
            _peer_count(pair.session, pair.parties[driver],
                        pair.parties[self.name], placeholder, self.points,
                        config, self.manifest.value_bound, discard, cache,
                        label=label)

    # -- replay ------------------------------------------------------------

    def _replay_passes(self, resume_pass: int, view: _LocalMeshView,
                       points_view: dict, config, executor) -> None:
        """Re-execute the completed passes against the recorded view.

        The channels are bound to :class:`ReplayTransport`s, so every
        recomputed outbound frame is verified against the record and
        every inbound frame is served from it -- no network traffic, no
        re-transmission, and the party ends in exactly the state it had
        at the checkpoint boundary (labels, ledger, RNG streams, pools,
        stats, transcripts).  Ends by cross-checking the boundary
        transcript digests and rebinding the channels to the live
        transports.
        """
        manifest = self.manifest
        old = self._checkpoint
        self._replaying = True
        try:
            for pass_index in range(resume_pass):
                driver = manifest.names[pass_index]
                if driver == self.name:
                    caches = ({peer: PeerCipherCache()
                               for peer in view.peers_of(driver)}
                              if config.cache_peer_ciphertexts else None)
                    result = _driver_pass(view, driver, points_view,
                                          config, manifest.value_bound,
                                          self._ledger, caches, executor)
                    self._labels = result.as_tuple()
                    served = 0
                else:
                    served = old.record_for(pass_index + 1).served_queries
                    self._replay_respond(driver, config, served)
                self._record_pass(driver, served)
        finally:
            self._replaying = False
        expected = old.record_for(resume_pass).pair_digests
        for pair in self.pairs.values():
            key = pair_key(pair.left, pair.right)
            pair.channel.transport.assert_exhausted()
            got = transcript_digest(pair.channel.transcript)
            if got != expected.get(key):
                raise CheckpointDivergenceError(
                    f"{self.name!r}: replayed transcript digest for pair "
                    f"{key} is {got[:12]}..., checkpoint recorded "
                    f"{str(expected.get(key))[:12]}... at boundary "
                    f"{resume_pass}")
            if pair.transport is not None:
                pair.channel.rebind_transport(pair.transport)
        self.passes_done = resume_pass

    def _replay_respond(self, driver: str, config, served: int) -> None:
        if driver not in self.pairs:
            return
        pair = self.pairs[driver]
        cache = (PeerCipherCache() if config.cache_peer_ciphertexts
                 else None)
        discard = LeakageLedger()
        placeholder = tuple([0] * self.manifest.dimensions)
        label = f"multiparty/{driver}-{self.name}"
        for _ in range(served):
            _peer_count(pair.session, pair.parties[driver],
                        pair.parties[self.name], placeholder, self.points,
                        config, self.manifest.value_bound, discard, cache,
                        label=label)

    # -- checkpoints -------------------------------------------------------

    def _record_pass(self, driver: str, served: int) -> None:
        frame_counts: dict[str, int] = {}
        digests: dict[str, str] = {}
        for pair in self.pairs.values():
            key = pair_key(pair.left, pair.right)
            frame_counts[key] = len(pair.channel.frame_log)
            digests[key] = transcript_digest(pair.channel.transcript)
        self._pass_records.append(PassRecord(
            driver=driver, served_queries=served,
            frame_counts=frame_counts, pair_digests=digests))

    def _write_checkpoint(self) -> None:
        frames: dict[str, list] = {}
        stats: dict[str, dict] = {}
        comparisons: dict[str, int] = {}
        for pair in self.pairs.values():
            key = pair_key(pair.left, pair.right)
            frames[key] = list(pair.channel.frame_log)
            stats[key] = pair.channel.stats.snapshot()
            comparisons[key] = pair.session.comparison_backend.invocations
        checkpoint = PartyCheckpoint(
            party=self.name,
            session_id=self.manifest.session_id,
            manifest_sha256=self._digest,
            epoch=self.epoch,
            passes_done=self.passes_done,
            labels=self._labels,
            ledger_events=self._ledger_events(),
            pass_records=list(self._pass_records),
            frames=frames,
            stats=stats,
            comparisons=comparisons,
        )
        self._checkpoint = checkpoint
        if self.run_dir is not None:
            write_checkpoint(self.run_dir, checkpoint)

    def _ledger_events(self) -> tuple[tuple[str, str, str, str], ...]:
        return tuple((event.protocol, event.learner,
                      event.disclosure.value, event.detail)
                     for event in self._ledger.events)

    def _reset_to_checkpoint(self) -> None:
        """Rewind in-memory progress to the last persisted boundary."""
        self.passes_done = (self._checkpoint.passes_done
                            if self._checkpoint is not None else 0)

    # -- failure / teardown ------------------------------------------------

    def _fail(self, cause: str, classification: str, message: str,
              attempts: list[dict], exc: BaseException) -> None:
        if self.run_dir is None:
            return
        write_failure(self.run_dir, FailureReport(
            party=self.name, cause=cause, classification=classification,
            message=message, phase=self._phase,
            pass_index=self.passes_done, epoch=self.epoch,
            peer=getattr(exc, "peer", None),
            last_frame=getattr(exc, "frame", None),
            attempts=tuple(attempts)))

    def _close_all(self, reason: str | None = None, *,
                   goodbye: bool = True) -> None:
        for pair in self.pairs.values():
            connection = pair.connection
            if connection is None or connection.closed:
                continue
            if goodbye:
                try:
                    connection.write_goodbye(reason or "closing")
                except (FramingError, OSError):
                    pass
            connection.close()
        self.pairs = {}

    def _build_report(self, labels: tuple[int, ...],
                      ledger: LeakageLedger, *,
                      elapsed: float, passes: float) -> PartyReport:
        pair_reports = {}
        for peer, pair in self.pairs.items():
            pair.channel.assert_drained()
            key = pair_key(pair.left, pair.right)
            pair_reports[key] = {
                "stats": pair.channel.stats.snapshot(),
                "transcript_sha256": transcript_digest(
                    pair.channel.transcript),
                "messages": pair.channel.transcript.message_count(),
                "comparisons": pair.session.comparison_backend.invocations,
            }
        events = tuple((event.protocol, event.learner,
                        event.disclosure.value, event.detail)
                       for event in ledger.events)
        return PartyReport(party=self.name, labels=labels,
                           ledger_events=events,
                           pair_reports=pair_reports,
                           elapsed_seconds=elapsed,
                           passes_seconds=passes)

    def _teardown(self) -> None:
        for pair in self.pairs.values():
            if pair.channel is not None:
                pair.channel.close(reason=f"{self.name}: run complete")


def run_party(run_dir: str | pathlib.Path, name: str, *,
              fail_after_queries: int | None = None,
              resume: bool = False, epoch: int = 0,
              psk: str | None = None,
              bind_host: str | None = None,
              trace_dir: str | pathlib.Path | None = None) -> PartyReport:
    """CLI entry: load manifest + own partition, run, write the report.

    With ``resume=True`` the party first loads its checkpoint from the
    run directory (validated against the session and manifest) and
    rejoins the mesh at ``max(epoch, checkpoint epoch + 1)`` -- the
    orchestrator's ``epoch`` is a hint; the checkpoint knows the last
    epoch this party actually reached, and the handshake's adopt-max
    rule absorbs any remaining skew.

    ``psk`` (default: the ``REPRO_PSK`` environment variable) is the
    out-of-band link-authentication secret, required when the manifest
    sets ``link_auth``; ``bind_host`` overrides the listening interface
    for multi-host meshes.
    """
    run_path = pathlib.Path(run_dir)
    if psk is None:
        psk = os.environ.get("REPRO_PSK") or None
    if trace_dir is None:
        trace_dir = os.environ.get("REPRO_TRACE_DIR") or None
    manifest = RunManifest.from_json(
        (run_path / "manifest.json").read_text())
    partition = json.loads(
        (run_path / f"partition_{name}.json").read_text())
    points = [tuple(point) for point in partition["points"]]
    checkpoint = None
    if resume:
        try:
            checkpoint = load_checkpoint(
                run_path, name, session_id=manifest.session_id,
                manifest_sha256=manifest_digest(manifest))
        except CheckpointError as exc:
            write_failure(run_path, FailureReport(
                party=name, cause=CAUSE_CHECKPOINT_INVALID,
                classification=FATAL, message=str(exc), phase="resume",
                epoch=epoch))
            raise
        if checkpoint is not None:
            epoch = max(epoch, checkpoint.epoch + 1)
    process = PartyProcess(manifest, name, points, run_dir=run_path,
                           resume_from=checkpoint, epoch=epoch,
                           fail_after_queries=fail_after_queries,
                           psk=psk, bind_host=bind_host,
                           trace_dir=trace_dir)
    try:
        report = process.run()
    finally:
        process.tracer.close()
    (run_path / f"report_{name}.json").write_text(report.to_json())
    return report
