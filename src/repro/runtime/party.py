"""The party program: one data holder as one networked OS process.

A party process owns exactly one partition of the data (loaded from its
own partition file; no shared memory with anyone), the public
:class:`~repro.runtime.manifest.RunManifest`, and one TCP link per mesh
pair it belongs to.  Its life cycle:

1. **Link-up** -- create listening sockets for the pairs where it holds
   the lower mesh slot, dial (with retry) the pairs where it holds the
   higher slot, and run the versioned handshake on every link; any
   mismatch aborts before protocol traffic.
2. **Sessions** -- build one :class:`~repro.runtime.mirror.MirrorChannel`
   + :class:`~repro.smc.session.SmcSession` per link, in global pair
   order (the order makes the cross-process key exchanges deadlock-free;
   see the link-up notes below).
3. **Passes** -- the drivers take turns in manifest order, exactly like
   the in-process mesh.  When this party drives, it runs the real
   :func:`repro.multiparty.horizontal._driver_pass` over its real
   points, announcing each per-peer query with a control frame; when a
   peer drives, this party serves its link by running the same query
   choreography with a placeholder query point (the mirror substitutes
   every driver-side message with the authentic frames).
4. **Report** -- labels, the pass's disclosure ledger, per-pair stats
   snapshots, transcript digests, and comparison counts are written as
   JSON for the orchestrator to merge.

Determinism contract: with the manifest's seeds, every observable -- the
wire bytes of every frame, both ends' transcripts, the ledger sequence,
the labels -- is bit-identical to
:func:`repro.multiparty.horizontal.run_multiparty_horizontal_dbscan`
over the same data on an in-process fabric (property-tested in
``tests/runtime``).
"""

from __future__ import annotations

import json
import os
import pathlib
import socket
import threading
import time
from dataclasses import dataclass

from repro.core.distance import PeerCipherCache
from repro.core.leakage import Disclosure, LeakageEvent, LeakageLedger
from repro.multiparty.horizontal import _driver_pass, _peer_count
from repro.multiparty.mesh import derive_pair_rng
from repro.multiparty.scheduler import make_pass_executor
from repro.net.framing import (
    FRAME_CONTROL,
    FRAME_GOODBYE,
    ConnectionClosedError,
    FramedConnection,
    FramingError,
    ReceiveTimeout,
)
from repro.net.party import Party
from repro.net.serialization import SerializationError, deserialize_message, \
    serialize_message
from repro.net.transcript import transcript_digest
from repro.net.transport import TcpTransport
from repro.runtime.handshake import PROTOCOL_VERSION, Hello, perform_handshake
from repro.runtime.manifest import RunManifest, manifest_digest, pair_key
from repro.runtime.mirror import MirrorChannel
from repro.crypto.keycache import cached_paillier_keypair
from repro.smc.session import CryptoContext, SmcSession


class PartyRuntimeError(RuntimeError):
    """Link-up or pass-sequencing failure in a party process."""


CONTROL_QUERY = "query"
CONTROL_END_PASS = "end_pass"

_DIAL_DEADLINE_S = 15.0
_BIND_ATTEMPTS = 10


@dataclass
class _PairRuntime:
    """One link: connection, mirrored channel, session, both handles.

    ``session``/``parties`` are filled by :meth:`PartyProcess.build_sessions`
    once every link of the mesh is up (the key exchange is itself
    protocol traffic and must run in the shared global pair order).
    """

    left: str
    right: str
    peer: str
    connection: FramedConnection
    channel: MirrorChannel
    session: SmcSession | None
    parties: dict[str, Party]


@dataclass(frozen=True)
class PartyReport:
    """What one party process hands back to the orchestrator.

    ``elapsed_seconds`` covers the whole run (link-up, key derivation
    and exchange, passes); ``passes_seconds`` covers only the protocol
    passes, so benchmarks can separate socket/round-trip cost from
    one-time setup.
    """

    party: str
    labels: tuple[int, ...]
    ledger_events: tuple[tuple[str, str, str, str], ...]
    pair_reports: dict
    elapsed_seconds: float
    passes_seconds: float

    def to_json(self) -> str:
        return json.dumps({
            "party": self.party,
            "labels": list(self.labels),
            "ledger_events": [list(event) for event in self.ledger_events],
            "pair_reports": self.pair_reports,
            "elapsed_seconds": self.elapsed_seconds,
            "passes_seconds": self.passes_seconds,
        }, sort_keys=True) + "\n"

    @classmethod
    def from_json(cls, payload: str) -> "PartyReport":
        data = json.loads(payload)
        return cls(
            party=data["party"],
            labels=tuple(data["labels"]),
            ledger_events=tuple(tuple(event)
                                for event in data["ledger_events"]),
            pair_reports=data["pair_reports"],
            elapsed_seconds=data["elapsed_seconds"],
            passes_seconds=data["passes_seconds"],
        )

    def ledger(self) -> LeakageLedger:
        ledger = LeakageLedger()
        for protocol, learner, disclosure, detail in self.ledger_events:
            ledger.events.append(LeakageEvent(
                protocol=protocol, learner=learner,
                disclosure=Disclosure(disclosure), detail=detail))
        return ledger


class _LocalMeshView:
    """The ``PartyMesh`` surface of one party's k-1 mirrored links.

    Implements exactly the methods the driver-pass machinery touches
    (``peers_of`` / ``session_between`` / ``party_in_pair`` /
    ``pair_channel`` / ``begin_peer_query``), with ``begin_peer_query``
    emitting the control frame the remote responder is waiting on.
    """

    def __init__(self, process: "PartyProcess"):
        self._process = process

    def peers_of(self, name: str) -> list[str]:
        return self._process.manifest.peers_of(name)

    def _pair(self, a: str, b: str) -> _PairRuntime:
        local = self._process.name
        peer = b if a == local else a
        try:
            return self._process.pairs[peer]
        except KeyError:
            raise PartyRuntimeError(
                f"no link between {a!r} and {b!r} in process "
                f"{local!r}") from None

    def session_between(self, a: str, b: str) -> SmcSession:
        return self._pair(a, b).session

    def party_in_pair(self, name: str, peer: str) -> Party:
        return self._pair(name, peer).parties[name]

    def pair_channel(self, a: str, b: str) -> MirrorChannel:
        return self._pair(a, b).channel

    def begin_peer_query(self, driver_name: str, peer_name: str) -> None:
        self._process.announce_query(peer_name)


class PartyProcess:
    """One party's full runtime over real sockets."""

    def __init__(self, manifest: RunManifest, name: str,
                 points: list[tuple[int, ...]], *,
                 fail_after_queries: int | None = None):
        manifest.slot_of(name)
        if len(points) != manifest.counts[name]:
            raise PartyRuntimeError(
                f"partition for {name!r} has {len(points)} points but the "
                f"manifest declares {manifest.counts[name]}")
        for point in points:
            if len(point) != manifest.dimensions:
                raise PartyRuntimeError(
                    f"point {point!r} has {len(point)} dimensions, "
                    f"manifest declares {manifest.dimensions}")
        self.manifest = manifest
        self.name = name
        self.points = [tuple(point) for point in points]
        self.pairs: dict[str, _PairRuntime] = {}
        self._digest = manifest_digest(manifest)
        # begin_peer_query fires from scheduler worker threads under
        # concurrent_peers, so the fault-injection counter is locked.
        self._query_lock = threading.Lock()
        self._queries_seen = 0
        self._fail_after_queries = fail_after_queries

    # -- link-up -----------------------------------------------------------

    def _hello(self, left: str, right: str) -> Hello:
        return Hello(version=PROTOCOL_VERSION,
                     session_id=self.manifest.session_id,
                     pair_left=left, pair_right=right,
                     party_id=self.name, config_digest=self._digest)

    def _listen(self, port: int, pair: str) -> socket.socket:
        last_error: OSError | None = None
        for attempt in range(_BIND_ATTEMPTS):
            listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            try:
                listener.bind((self.manifest.host, port))
                listener.listen(1)
                return listener
            except OSError as exc:
                listener.close()
                last_error = exc
                time.sleep(0.05 * (attempt + 1))
        raise PartyRuntimeError(
            f"{self.name!r} could not bind port {port} for pair {pair} "
            f"after {_BIND_ATTEMPTS} attempts: {last_error}")

    def _dial(self, port: int, pair: str) -> socket.socket:
        deadline = time.monotonic() + _DIAL_DEADLINE_S
        attempt = 0
        while True:
            try:
                sock = socket.create_connection(
                    (self.manifest.host, port), timeout=2.0)
                sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
                return sock
            except OSError as exc:
                attempt += 1
                if time.monotonic() >= deadline:
                    raise PartyRuntimeError(
                        f"{self.name!r} could not dial port {port} for "
                        f"pair {pair} within {_DIAL_DEADLINE_S}s "
                        f"({attempt} attempts): {exc}") from exc
                time.sleep(min(0.25, 0.02 * attempt))

    def establish_links(self) -> None:
        """Listen (lower slot) / dial (higher slot) + handshake per pair.

        All listeners are created before any dial, so dial-with-retry
        converges as soon as every process has started; every handshake
        is send-then-read, so the hello frames cross in flight and no
        ordering of the k processes can deadlock the link-up.
        """
        manifest = self.manifest
        listeners: dict[str, tuple[socket.socket, str]] = {}
        for left, right in manifest.pairs_of(self.name):
            key = pair_key(left, right)
            if self.name == left:
                listeners[key] = (self._listen(manifest.ports[key], key),
                                  right)
        try:
            for left, right in manifest.pairs_of(self.name):
                key = pair_key(left, right)
                if self.name != right:
                    continue
                sock = self._dial(manifest.ports[key], key)
                self._handshake_and_register(sock, left, right,
                                             expected_peer=left)
            for left, right in manifest.pairs_of(self.name):
                key = pair_key(left, right)
                if self.name != left:
                    continue
                listener, expected = listeners[key]
                listener.settimeout(_DIAL_DEADLINE_S)
                try:
                    sock, _ = listener.accept()
                except socket.timeout:
                    raise PartyRuntimeError(
                        f"{self.name!r} waited {_DIAL_DEADLINE_S}s on port "
                        f"{manifest.ports[key]} for {expected!r} to dial "
                        f"pair {key}; it never connected") from None
                sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
                self._handshake_and_register(sock, left, right,
                                             expected_peer=expected)
        finally:
            for listener, _ in listeners.values():
                listener.close()

    def _handshake_and_register(self, sock: socket.socket, left: str,
                                right: str, expected_peer: str) -> None:
        key = pair_key(left, right)
        connection = FramedConnection(
            sock, timeout_s=self.manifest.timeout_s,
            name=f"{self.name}@{key}")
        perform_handshake(connection, self._hello(left, right),
                          expected_peer)
        transport = TcpTransport(left, right, connection,
                                 local_name=self.name)
        channel = MirrorChannel(left, right, self.name, transport)
        self.pairs[expected_peer] = _PairRuntime(
            left=left, right=right, peer=expected_peer,
            connection=connection, channel=channel, session=None,
            parties={})

    def build_sessions(self) -> None:
        """Sessions in *global* pair order: deadlock-free key exchange.

        Each link's key exchange blocks only on the peer's opening frame
        for that link, and every process visits its links in the shared
        global order -- so the smallest not-yet-built pair always has
        both owners working on it, and link-up progresses.  Key material
        is derived per party slot from the shared ``key_seed``, exactly
        as ``PartyMesh._make_context`` derives it, so the exchanged
        public keys (and everything encrypted under them) match the
        in-process run byte for byte.
        """
        config = self.manifest.protocol_config()
        contexts = {
            name: CryptoContext(paillier=cached_paillier_keypair(
                config.smc.paillier_bits,
                100 * config.smc.key_seed + slot))
            for slot, name in enumerate(self.manifest.names)
        }
        for left, right in self.manifest.pairs():
            if self.name not in (left, right):
                continue
            pair = self.pairs[right if self.name == left else left]
            channel = pair.channel
            left_party = Party(channel.left, derive_pair_rng(
                self.manifest.seed_of(left), left, left, right))
            right_party = Party(channel.right, derive_pair_rng(
                self.manifest.seed_of(right), right, left, right))
            pair.parties = {left: left_party, right: right_party}
            pair.session = SmcSession(left_party, right_party, config.smc,
                                      preset_contexts=contexts)

    # -- control plane -----------------------------------------------------

    def announce_query(self, peer: str) -> None:
        self._count_query()
        self.pairs[peer].connection.write_frame(
            FRAME_CONTROL, serialize_message([CONTROL_QUERY]))

    def _count_query(self) -> None:
        with self._query_lock:
            self._queries_seen += 1
            seen = self._queries_seen
        if (self._fail_after_queries is not None
                and seen > self._fail_after_queries):
            # Failure-injection hook for the orchestrator tests: die the
            # way a crashed process dies -- no goodbye, no cleanup.
            print(f"[fault injection] {self.name} dying after "
                  f"{self._fail_after_queries} queries", flush=True)
            os._exit(13)

    def _read_control(self, pair: _PairRuntime) -> list:
        while True:
            try:
                kind, payload = pair.connection.read_frame()
                break
            except ReceiveTimeout:
                # Waiting for the next control frame is idle *by
                # design*: the driver may legitimately spend longer than
                # any per-message timeout querying its other peers or
                # computing locally.  Liveness does not suffer -- a dead
                # peer surfaces immediately as EOF/reset below, and a
                # hung-but-alive fleet is bounded by the orchestrator's
                # run deadline (or the operator, for hand-run parties).
                continue
            except (ConnectionClosedError, FramingError) as exc:
                raise PartyRuntimeError(
                    f"{self.name!r} lost peer {pair.peer!r} while waiting "
                    f"for a control frame: {exc}") from exc
        if kind == FRAME_GOODBYE:
            raise PartyRuntimeError(
                f"peer {pair.peer!r} closed the link "
                f"({payload.decode('utf-8', 'replace')!r}) while "
                f"{self.name!r} awaited its next query")
        if kind != FRAME_CONTROL:
            raise PartyRuntimeError(
                f"{self.name!r} expected a control frame from "
                f"{pair.peer!r}, got kind {kind!r} (protocol frames must "
                f"not precede the query announcement)")
        try:
            record = deserialize_message(payload)
        except (SerializationError, UnicodeDecodeError) as exc:
            raise PartyRuntimeError(
                f"unreadable control frame from {pair.peer!r}: "
                f"{exc}") from exc
        if (not isinstance(record, list) or not record
                or record[0] not in (CONTROL_QUERY, CONTROL_END_PASS)):
            raise PartyRuntimeError(
                f"malformed control record from {pair.peer!r}: {record!r}")
        return record

    # -- passes ------------------------------------------------------------

    def run(self) -> PartyReport:
        started = time.perf_counter()
        self.establish_links()
        self.build_sessions()
        config = self.manifest.protocol_config()
        manifest = self.manifest
        view = _LocalMeshView(self)
        ledger = LeakageLedger()
        labels: tuple[int, ...] = ()

        # The placeholder partitions: public counts, all-zero coordinates
        # (see RunManifest.placeholder_points / the mirror docstring).
        points_view = {name: (self.points if name == self.name
                              else manifest.placeholder_points(name))
                       for name in manifest.names}

        executor = make_pass_executor(config.concurrent_peers,
                                      config.peer_workers)
        passes_started = time.perf_counter()
        try:
            for driver in manifest.names:
                if driver == self.name:
                    caches = ({peer: PeerCipherCache()
                               for peer in view.peers_of(driver)}
                              if config.cache_peer_ciphertexts else None)
                    result = _driver_pass(view, driver, points_view, config,
                                          manifest.value_bound, ledger,
                                          caches, executor)
                    labels = result.as_tuple()
                    for peer in view.peers_of(driver):
                        self.pairs[peer].connection.write_frame(
                            FRAME_CONTROL,
                            serialize_message([CONTROL_END_PASS]))
                else:
                    self._respond_pass(driver, config)
        finally:
            executor.close()

        finished = time.perf_counter()
        report = self._build_report(labels, ledger,
                                    elapsed=finished - started,
                                    passes=finished - passes_started)
        self._teardown()
        return report

    def _respond_pass(self, driver: str, config) -> None:
        """Serve one remote driver's pass on our shared link.

        Each announced query runs the *same* ``_peer_count`` choreography
        the driver runs, with a placeholder query point; the mirror
        substitutes every driver-side frame with the authentic one.  The
        locally-computed count and disclosures belong to the driver's
        view and are discarded -- the driver's process records them from
        authentic data.
        """
        if driver not in self.pairs:
            return
        pair = self.pairs[driver]
        # A driver skips empty peers entirely, so a party with no points
        # only ever sees the end-of-pass marker here.
        cache = (PeerCipherCache() if config.cache_peer_ciphertexts
                 else None)
        discard = LeakageLedger()
        placeholder = tuple([0] * self.manifest.dimensions)
        label = f"multiparty/{driver}-{self.name}"
        while True:
            record = self._read_control(pair)
            if record[0] == CONTROL_END_PASS:
                return
            self._count_query()
            _peer_count(pair.session, pair.parties[driver],
                        pair.parties[self.name], placeholder, self.points,
                        config, self.manifest.value_bound, discard, cache,
                        label=label)

    # -- reporting / teardown ----------------------------------------------

    def _build_report(self, labels: tuple[int, ...],
                      ledger: LeakageLedger, *,
                      elapsed: float, passes: float) -> PartyReport:
        pair_reports = {}
        for peer, pair in self.pairs.items():
            pair.channel.assert_drained()
            key = pair_key(pair.left, pair.right)
            pair_reports[key] = {
                "stats": pair.channel.stats.snapshot(),
                "transcript_sha256": transcript_digest(
                    pair.channel.transcript),
                "messages": pair.channel.transcript.message_count(),
                "comparisons": pair.session.comparison_backend.invocations,
            }
        events = tuple((event.protocol, event.learner,
                        event.disclosure.value, event.detail)
                       for event in ledger.events)
        return PartyReport(party=self.name, labels=labels,
                           ledger_events=events,
                           pair_reports=pair_reports,
                           elapsed_seconds=elapsed,
                           passes_seconds=passes)

    def _teardown(self) -> None:
        for pair in self.pairs.values():
            pair.channel.close(reason=f"{self.name}: run complete")


def run_party(run_dir: str | pathlib.Path, name: str, *,
              fail_after_queries: int | None = None) -> PartyReport:
    """CLI entry: load manifest + own partition, run, write the report."""
    run_path = pathlib.Path(run_dir)
    manifest = RunManifest.from_json(
        (run_path / "manifest.json").read_text())
    partition = json.loads(
        (run_path / f"partition_{name}.json").read_text())
    points = [tuple(point) for point in partition["points"]]
    process = PartyProcess(manifest, name, points,
                           fail_after_queries=fail_after_queries)
    report = process.run()
    (run_path / f"report_{name}.json").write_text(report.to_json())
    return report
