"""Session client + in-process daemon fleet harness.

:class:`SessionClient` is the submission plane of the daemon runtime:
it keeps one framed connection open to every resident
:class:`~repro.runtime.daemon.PartyDaemon` of a mesh and submits runs
as ``start_session`` control records -- each daemon receiving the full
:class:`~repro.runtime.manifest.RunManifest` plus *only its own
partition*, the same privacy boundary the PR-5 orchestrator enforces
with run directories.  Submissions return immediately with a
:class:`SessionHandle`; reports stream back asynchronously on the same
connections (a reader thread per daemon routes them), so many sessions
can be in flight at once and ``submit(...); submit(...); wait both``
is the natural client idiom.

Merging and verification reuse the orchestrator's machinery
(:func:`~repro.runtime.orchestrator.merge_reports` cross-checks the
per-pair transcript digests between both owners of every pair), so a
daemon run yields the same :class:`MultipartyRunResult` surface -- and
the same equivalence guarantees -- as every other runtime.

:class:`DaemonFleet` is the harness: it allocates ports, builds the
:class:`~repro.runtime.daemon.MeshSpec`, and runs one daemon per party
either on background threads (each with its own event loop -- the
default for tests and benchmarks) or as ``repro serve`` subprocesses
(real process isolation, used by the CLI walkthrough).
"""

from __future__ import annotations

import json
import os
import pathlib
import socket
import subprocess
import sys
import tempfile
import threading
import time
from dataclasses import dataclass, replace

from repro.net.framing import (
    FRAME_CONTROL,
    FRAME_GOODBYE,
    ConnectionClosedError,
    FrameAuthenticationError,
    FrameAuthenticator,
    FramedConnection,
    FramingError,
    ReceiveTimeout,
)
from repro.net.serialization import (
    SerializationError,
    deserialize_message,
    serialize_message,
)
from repro.obs.metrics import MetricsRegistry
from repro.runtime.daemon import (
    CONTROL_GET_METRICS,
    CONTROL_METRICS,
    CONTROL_SESSION_FAILED,
    CONTROL_SESSION_REJECTED,
    CONTROL_SESSION_REPORT,
    CONTROL_SHUTDOWN,
    CONTROL_START_SESSION,
    SHUTDOWN_DRAIN,
    DaemonError,
    MeshSpec,
    PartyDaemon,
    mesh_digest,
)
from repro.runtime.handshake import perform_client_handshake
from repro.runtime.manifest import RunManifest
from repro.runtime.orchestrator import (
    allocate_ports,
    build_manifest,
    merge_reports,
)
from repro.runtime.party import PartyReport

_CONNECT_BACKOFF_S = 0.05


class SessionClientError(RuntimeError):
    """Submission-plane failure: lost daemon, failed session, timeout."""


@dataclass(frozen=True)
class DaemonRun:
    """One completed daemon session, merged across all parties."""

    result: object  # MultipartyRunResult
    reports: dict[str, PartyReport]
    transcript_digests: dict[str, str]
    manifest: RunManifest
    elapsed_seconds: float


class SessionHandle:
    """A submitted session; :meth:`result` blocks until every daemon
    reported (or any of them failed)."""

    def __init__(self, client: "SessionClient", manifest: RunManifest):
        self.manifest = manifest
        self.session_id = manifest.session_id
        self._client = client
        self._submitted = time.perf_counter()
        self._event = threading.Event()
        self._reports: dict[str, PartyReport] = {}
        self._errors: dict[str, str] = {}
        self._lock = threading.Lock()

    def _offer(self, party: str, report: PartyReport | None,
               error: str | None) -> None:
        with self._lock:
            if report is not None:
                self._reports[party] = report
            if error is not None:
                self._errors[party] = error
            settled = len(self._reports) + len(self._errors)
            if self._errors or settled == len(self.manifest.names):
                self._event.set()

    def done(self) -> bool:
        return self._event.is_set()

    def result(self, timeout: float | None = None) -> DaemonRun:
        budget = timeout if timeout is not None \
            else self._client.spec.timeout_s * (len(self.manifest.names)
                                                + len(self.manifest.names))
        if not self._event.wait(budget):
            raise SessionClientError(
                f"session {self.session_id!r} produced no result within "
                f"{budget}s ({len(self._reports)}/"
                f"{len(self.manifest.names)} reports in)")
        with self._lock:
            if self._errors:
                details = "; ".join(
                    f"{party}: {error}"
                    for party, error in sorted(self._errors.items()))
                raise SessionClientError(
                    f"session {self.session_id!r} failed on "
                    f"{sorted(self._errors)}: {details}")
            reports = dict(self._reports)
        result, digests = merge_reports(self.manifest, reports)
        return DaemonRun(result=result, reports=reports,
                         transcript_digests=digests,
                         manifest=self.manifest,
                         elapsed_seconds=time.perf_counter()
                         - self._submitted)


class _MetricsWaiter:
    """Collects one ``get_metrics`` request's per-daemon replies."""

    def __init__(self, expected: set[str]):
        self.expected = expected
        self.snapshots: dict[str, dict] = {}
        self.lock = threading.Lock()
        self.event = threading.Event()

    def offer(self, party: str, snapshot: dict) -> None:
        with self.lock:
            self.snapshots[party] = snapshot
            if set(self.snapshots) >= self.expected:
                self.event.set()


class SessionClient:
    """One client endpoint connected to every daemon of a mesh."""

    def __init__(self, spec: MeshSpec, *, client_id: str = "client",
                 psk: str | None = None):
        self.spec = spec
        self.client_id = client_id
        self.digest = mesh_digest(spec)
        if spec.link_auth and not psk:
            raise SessionClientError(
                f"mesh spec requires link authentication but client "
                f"{client_id!r} was given no PSK")
        self._authenticator = (FrameAuthenticator(psk, self.digest)
                               if spec.link_auth else None)
        self._connections: dict[str, FramedConnection] = {}
        self._write_locks: dict[str, threading.Lock] = {}
        self._readers: list[threading.Thread] = []
        self._handles: dict[str, SessionHandle] = {}
        self._handles_lock = threading.Lock()
        self._metrics_waiters: dict[str, _MetricsWaiter] = {}
        self._metrics_lock = threading.Lock()
        self._metrics_seq = 0
        self._closed = False
        try:
            for name in spec.names:
                connection = self._connect(name)
                perform_client_handshake(connection,
                                         client_id=client_id,
                                         daemon_id=name,
                                         config_digest=self.digest)
                self._connections[name] = connection
                self._write_locks[name] = threading.Lock()
            for name, connection in self._connections.items():
                reader = threading.Thread(
                    target=self._read_loop, args=(name, connection),
                    name=f"client-read-{name}", daemon=True)
                reader.start()
                self._readers.append(reader)
        except BaseException:
            self.close()
            raise

    def _connect(self, name: str) -> FramedConnection:
        deadline = time.monotonic() + self.spec.connect_timeout_s
        last_error: Exception | None = None
        while time.monotonic() < deadline:
            try:
                sock = socket.create_connection(
                    (self.spec.host, self.spec.ports[name]), timeout=5.0)
                return FramedConnection(
                    sock, timeout_s=self.spec.timeout_s,
                    name=f"{self.client_id}->{name}",
                    authenticator=self._authenticator)
            except OSError as exc:
                last_error = exc
                time.sleep(_CONNECT_BACKOFF_S)
        raise SessionClientError(
            f"could not reach daemon {name!r} at "
            f"{self.spec.host}:{self.spec.ports[name]} within "
            f"{self.spec.connect_timeout_s}s: {last_error}")

    # -- inbound report routing --------------------------------------------

    def _read_loop(self, name: str, connection: FramedConnection) -> None:
        while True:
            try:
                kind, payload = connection.read_frame()
            except ReceiveTimeout:
                # Idle between reports (sessions can outlast the frame
                # timeout); keep listening until goodbye/EOF.
                continue
            except FrameAuthenticationError as exc:
                # Tampered or mis-keyed daemon frames are terminal for
                # every in-flight session on this link -- and named as
                # such, never as a generic lost connection.
                self._fail_pending(name,
                                   f"link authentication failed: {exc}")
                return
            except (ConnectionClosedError, FramingError, OSError):
                self._fail_pending(name, "daemon connection lost")
                return
            if kind == FRAME_GOODBYE:
                self._fail_pending(
                    name, f"daemon said goodbye: "
                          f"{payload.decode('utf-8', 'replace')}")
                return
            if kind != FRAME_CONTROL:
                continue
            try:
                record = deserialize_message(payload)
            except (SerializationError, UnicodeDecodeError):
                continue
            if not isinstance(record, list) or len(record) not in (3, 4):
                continue
            tag, session_id, body = record[:3]
            if tag == CONTROL_METRICS:
                # `session_id` is the request id on this record shape.
                with self._metrics_lock:
                    waiter = self._metrics_waiters.get(session_id)
                if waiter is not None:
                    try:
                        snapshot = json.loads(body)
                    except (json.JSONDecodeError, TypeError):
                        snapshot = None
                    if isinstance(snapshot, dict):
                        waiter.offer(name, snapshot)
                continue
            with self._handles_lock:
                handle = self._handles.get(session_id)
            if handle is None:
                continue
            if tag == CONTROL_SESSION_REPORT:
                handle._offer(name, PartyReport.from_json(body), None)
            elif tag == CONTROL_SESSION_FAILED:
                handle._offer(name, None, str(body))
            elif tag == CONTROL_SESSION_REJECTED:
                # Typed rejections carry a machine-readable code fourth
                # ("capacity", "draining"); older daemons send three.
                if len(record) == 4:
                    handle._offer(name, None,
                                  f"rejected ({record[3]}): {body}")
                else:
                    handle._offer(name, None, f"rejected: {body}")

    def _fail_pending(self, name: str, reason: str) -> None:
        if self._closed:
            return
        with self._handles_lock:
            handles = list(self._handles.values())
        for handle in handles:
            if handle.done():
                continue
            with handle._lock:
                # A lost connection can only lose what this daemon had
                # not delivered yet.  A daemon that already reported --
                # e.g. one that finished its drain and closed while
                # peers were still mid-pass -- must not fail handles
                # waiting only on the *other* daemons.
                delivered = (name in handle._reports
                             or name in handle._errors)
            if not delivered:
                handle._offer(name, None, reason)

    # -- submission --------------------------------------------------------

    def submit(self, manifest: RunManifest,
               points_by_party: dict[str, list]) -> SessionHandle:
        """Fire one session at the mesh; returns immediately.

        Each daemon receives the manifest plus its own partition only.
        Submission order across daemons is irrelevant: the daemons
        cross-validate the manifest digest on their pair links before
        any protocol byte of the session flows.
        """
        if self._closed:
            raise SessionClientError("client is closed")
        if tuple(manifest.names) != self.spec.names:
            raise SessionClientError(
                f"manifest names {manifest.names} do not match the mesh "
                f"{self.spec.names}")
        if set(points_by_party) != set(self.spec.names):
            raise SessionClientError(
                f"partitions must cover exactly {sorted(self.spec.names)},"
                f" got {sorted(points_by_party)}")
        handle = SessionHandle(self, manifest)
        with self._handles_lock:
            if manifest.session_id in self._handles:
                raise SessionClientError(
                    f"session {manifest.session_id!r} is already in "
                    f"flight")
            self._handles[manifest.session_id] = handle
        manifest_json = manifest.to_json()
        for name in self.spec.names:
            points_json = json.dumps(
                [list(point) for point in points_by_party[name]])
            record = serialize_message(
                [CONTROL_START_SESSION, manifest_json, points_json])
            try:
                with self._write_locks[name]:
                    self._connections[name].write_frame(
                        FRAME_CONTROL, record)
            except (ConnectionClosedError, FramingError) as exc:
                handle._offer(name, None, f"submit failed: {exc}")
        return handle

    def run(self, manifest: RunManifest,
            points_by_party: dict[str, list],
            timeout: float | None = None) -> DaemonRun:
        """Submit and wait -- the serial convenience wrapper."""
        return self.submit(manifest, points_by_party).result(timeout)

    def submit_wave(self, manifest: RunManifest,
                    points_by_party: dict[str, list],
                    concurrency: int) -> list[SessionHandle]:
        """Submit ``concurrency`` independent copies of one manifest.

        Each copy derives its session id from the template's
        (``{session_id}-w{index:02d}``) and sets ``rng_namespace`` to
        that derived id, so the copies share seeds and workload but
        never coin streams -- the high-concurrency idiom the benchmark
        used to assemble by hand.  Returns handles in submission order;
        callers wait on each (rejections surface per handle, so a
        daemon at capacity fails that copy, not the wave).
        """
        if concurrency < 1:
            raise SessionClientError(
                f"concurrency must be >= 1, got {concurrency}")
        handles = []
        for index in range(concurrency):
            derived = f"{manifest.session_id}-w{index:02d}"
            copy = replace(manifest, session_id=derived,
                           rng_namespace=derived)
            handles.append(self.submit(copy, points_by_party))
        return handles

    def get_metrics(self, timeout: float | None = None) -> dict[str, dict]:
        """Live metrics snapshot from every daemon: ``{party: snapshot}``.

        Read-only introspection on the standing client connections --
        the transport under ``repro stats``.  Each daemon answers with
        its full :meth:`~repro.obs.metrics.MetricsRegistry.snapshot`;
        the call blocks until every daemon replied (or ``timeout``,
        default the mesh receive timeout, elapses).
        """
        if self._closed:
            raise SessionClientError("client is closed")
        with self._metrics_lock:
            self._metrics_seq += 1
            request_id = f"metrics-{self._metrics_seq}"
            waiter = _MetricsWaiter(set(self.spec.names))
            self._metrics_waiters[request_id] = waiter
        record = serialize_message([CONTROL_GET_METRICS, request_id])
        try:
            for name in self.spec.names:
                try:
                    with self._write_locks[name]:
                        self._connections[name].write_frame(
                            FRAME_CONTROL, record)
                except (ConnectionClosedError, FramingError) as exc:
                    raise SessionClientError(
                        f"metrics request to daemon {name!r} failed: "
                        f"{exc}") from exc
            budget = timeout if timeout is not None else self.spec.timeout_s
            if not waiter.event.wait(budget):
                with waiter.lock:
                    missing = sorted(waiter.expected
                                     - set(waiter.snapshots))
                raise SessionClientError(
                    f"metrics request timed out after {budget}s; no "
                    f"answer from {missing}")
            with waiter.lock:
                return dict(waiter.snapshots)
        finally:
            with self._metrics_lock:
                self._metrics_waiters.pop(request_id, None)

    def shutdown_mesh(self, *, drain: bool = False) -> None:
        """Ask every daemon to stop (idempotent, best-effort).

        With ``drain=True`` the daemons finish their in-flight sessions
        before closing links; new submissions get a typed ``draining``
        rejection in the meantime.
        """
        record = serialize_message(
            [CONTROL_SHUTDOWN, SHUTDOWN_DRAIN] if drain
            else [CONTROL_SHUTDOWN])
        for name in self.spec.names:
            try:
                with self._write_locks[name]:
                    self._connections[name].write_frame(
                        FRAME_CONTROL, record)
            except (ConnectionClosedError, FramingError, KeyError):
                pass

    def close(self) -> None:
        self._closed = True
        for connection in self._connections.values():
            try:
                connection.write_goodbye("client done")
            except ConnectionClosedError:
                pass
            connection.close()

    def __enter__(self) -> "SessionClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def run_via_daemons(points_by_party: dict[str, list], config,
                    seeds: list[int], *, client: SessionClient,
                    session_id: str | None = None,
                    rng_namespace: str | None = None,
                    timeout: float | None = None) -> DaemonRun:
    """Run one clustering session on a resident daemon mesh.

    The drop-in daemon twin of ``orchestrate_run`` (same workload
    signature: one RNG seed per party, in party order): same manifest
    construction, same merge/cross-check, but against daemons that are
    already linked up and warm.  The manifest's port plan is a
    placeholder (daemons route over their standing links and never read
    it); everything the protocol *consumes* -- names, seeds, counts,
    value bound, config digest -- is the real thing.
    """
    spec = client.spec
    if set(points_by_party) != set(spec.names):
        raise SessionClientError(
            f"partitions must cover exactly {sorted(spec.names)}, "
            f"got {sorted(points_by_party)}")
    # Manifest party order is partition-dict insertion order; pin it to
    # the mesh slot order so any dict ordering yields the same run.
    ordered = {name: points_by_party[name] for name in spec.names}
    from repro.runtime.manifest import pair_key
    ports = {pair_key(a, b): 0
             for i, a in enumerate(spec.names)
             for b in spec.names[i + 1:]}
    manifest = build_manifest(ordered, config, seeds,
                              session_id=session_id, ports=ports,
                              host=spec.host,
                              rng_namespace=rng_namespace)
    return client.run(manifest, ordered, timeout)


# -- fleet harness ---------------------------------------------------------

class _DaemonThread:
    """One in-process daemon on a background thread with its own loop."""

    def __init__(self, spec: MeshSpec, name: str,
                 psk: str | None = None, *,
                 metrics_enabled: bool = True,
                 trace_dir: str | None = None):
        self.daemon = PartyDaemon(
            spec, name, psk=psk,
            metrics=MetricsRegistry(enabled=metrics_enabled),
            trace_dir=trace_dir)
        self.thread = threading.Thread(target=self.daemon.run,
                                       name=f"daemon-{name}", daemon=True)

    def start(self) -> None:
        self.thread.start()

    def wait_ready(self, timeout: float) -> None:
        if not self.daemon.ready.wait(timeout):
            raise DaemonError(
                f"daemon {self.daemon.name!r} did not come up within "
                f"{timeout}s")
        if self.daemon.error is not None:
            raise DaemonError(
                f"daemon {self.daemon.name!r} failed during startup: "
                f"{self.daemon.error}") from self.daemon.error

    def stop(self, timeout: float) -> None:
        self.daemon.stop()
        self.thread.join(timeout)


class _DaemonProcess:
    """One ``repro serve`` subprocess (real process isolation)."""

    def __init__(self, spec_path: pathlib.Path, name: str,
                 psk: str | None = None, *,
                 trace_dir: str | None = None):
        self.name = name
        env = dict(os.environ)
        if psk:
            # The PSK travels by environment, never argv: command lines
            # are world-readable on a shared host.
            env["REPRO_PSK"] = psk
        if trace_dir:
            env["REPRO_TRACE_DIR"] = str(trace_dir)
        self.process = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve",
             "--spec", str(spec_path), "--party", name],
            stdout=subprocess.DEVNULL, stderr=subprocess.PIPE, env=env)

    def stop(self, timeout: float) -> None:
        if self.process.poll() is None:
            self.process.terminate()
        try:
            self.process.wait(timeout)
        except subprocess.TimeoutExpired:
            self.process.kill()
            self.process.wait()


class DaemonFleet:
    """Context manager running one daemon per party of a fresh mesh.

    ``mode="thread"`` (default) runs each daemon's event loop on a
    background thread of this process -- zero spawn cost, ideal for
    tests and benchmarks; the privacy boundary is still exercised
    end-to-end because partitions only travel inside ``start_session``
    records over real TCP.  ``mode="process"`` spawns ``repro serve``
    subprocesses for true per-party isolation.
    """

    def __init__(self, names, *, host: str | None = None,
                 net_delay_s: float = 0.0, engine_workers: int = 1,
                 timeout_s: float = 30.0, connect_timeout_s: float = 15.0,
                 mode: str = "thread", psk: str | None = None,
                 max_sessions: int = 0, metrics_enabled: bool = True,
                 trace_dir: str | None = None):
        if mode not in ("thread", "process"):
            raise DaemonError(f"unknown fleet mode {mode!r}")
        names = tuple(names)
        kwargs = {"host": host} if host else {}
        ports = allocate_ports(len(names), **kwargs)
        self.spec = MeshSpec(
            names=names,
            ports=dict(zip(names, ports)),
            net_delay_s=net_delay_s,
            engine_workers=engine_workers,
            timeout_s=timeout_s,
            connect_timeout_s=connect_timeout_s,
            max_sessions=max_sessions,
            link_auth=bool(psk),
            **kwargs)
        self.mode = mode
        self.psk = psk
        self.metrics_enabled = metrics_enabled
        self.trace_dir = trace_dir
        self._members: list = []
        self._spec_dir: tempfile.TemporaryDirectory | None = None

    @property
    def daemons(self) -> list[PartyDaemon]:
        """The resident daemons (thread mode only)."""
        return [member.daemon for member in self._members
                if isinstance(member, _DaemonThread)]

    def start(self) -> "DaemonFleet":
        if self.mode == "thread":
            self._members = [
                _DaemonThread(self.spec, name, self.psk,
                              metrics_enabled=self.metrics_enabled,
                              trace_dir=self.trace_dir)
                for name in self.spec.names]
            for member in self._members:
                member.start()
            for member in self._members:
                member.wait_ready(self.spec.connect_timeout_s + 5.0)
        else:
            self._spec_dir = tempfile.TemporaryDirectory(
                prefix="repro-mesh-")
            spec_path = pathlib.Path(self._spec_dir.name) / "mesh.json"
            spec_path.write_text(self.spec.to_json())
            self._members = [
                _DaemonProcess(spec_path, name, self.psk,
                               trace_dir=self.trace_dir)
                for name in self.spec.names]
        return self

    def client(self, *, client_id: str = "client") -> SessionClient:
        return SessionClient(self.spec, client_id=client_id, psk=self.psk)

    def stop(self) -> None:
        for member in self._members:
            try:
                member.stop(5.0)
            except Exception:  # noqa: BLE001 - teardown is best-effort
                pass
        self._members = []
        if self._spec_dir is not None:
            self._spec_dir.cleanup()
            self._spec_dir = None

    def __enter__(self) -> "DaemonFleet":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()
