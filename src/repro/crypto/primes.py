"""Prime generation for Paillier and RSA key material.

Miller-Rabin with a small-prime sieve front end.  All randomness is drawn
from an injected :class:`random.Random` so key generation is reproducible
under a seed (tests, benchmarks) -- production callers should pass an
instance seeded from ``secrets``.
"""

from __future__ import annotations

import random

# Primes below 1000; trial division by these rejects ~92% of candidates
# before the (much more expensive) Miller-Rabin rounds run.
_SMALL_PRIMES: tuple[int, ...] = tuple(
    n for n in range(2, 1000)
    if all(n % d for d in range(2, int(n ** 0.5) + 1))
)

# 40 rounds gives a 2^-80 error bound, the conventional choice.
_MILLER_RABIN_ROUNDS = 40


def is_probable_prime(candidate: int, rng: random.Random | None = None,
                      rounds: int = _MILLER_RABIN_ROUNDS) -> bool:
    """Miller-Rabin primality test.

    Args:
        candidate: integer to test.
        rng: randomness source for witness selection; a fresh unseeded
            ``Random`` is used when omitted.
        rounds: number of Miller-Rabin witnesses.
    """
    if candidate < 2:
        return False
    for p in _SMALL_PRIMES:
        if candidate == p:
            return True
        if candidate % p == 0:
            return False
    rng = rng or random.Random()

    # Write candidate - 1 = d * 2^s with d odd.
    d = candidate - 1
    s = 0
    while d % 2 == 0:
        d //= 2
        s += 1

    for _ in range(rounds):
        witness = rng.randrange(2, candidate - 1)
        x = pow(witness, d, candidate)
        if x in (1, candidate - 1):
            continue
        for _ in range(s - 1):
            x = pow(x, 2, candidate)
            if x == candidate - 1:
                break
        else:
            return False
    return True


def generate_prime(bits: int, rng: random.Random) -> int:
    """Generate a random prime with exactly ``bits`` bits.

    The top two bits are forced to 1 so that the product of two such
    primes has exactly ``2 * bits`` bits (Paillier and RSA moduli rely on
    this for predictable plaintext-space sizes).
    """
    if bits < 8:
        raise ValueError(f"prime size too small: {bits} bits")
    while True:
        candidate = rng.getrandbits(bits)
        candidate |= (1 << (bits - 1)) | (1 << (bits - 2)) | 1
        if is_probable_prime(candidate, rng):
            return candidate


def generate_distinct_primes(bits: int, rng: random.Random) -> tuple[int, int]:
    """Two distinct primes of ``bits`` bits each (the ``p, q`` of a keypair)."""
    p = generate_prime(bits, rng)
    q = generate_prime(bits, rng)
    while q == p:
        q = generate_prime(bits, rng)
    return p, q


def random_prime_in_range(low: int, high: int, rng: random.Random) -> int:
    """Uniformly sample a prime from ``[low, high)``.

    Used by YMPP step 4, where Alice repeatedly draws a random prime ``p``
    of ``N/2`` bits until all residues ``z_u`` are well separated mod ``p``.

    Raises:
        ValueError: if the interval contains no prime (guarded by a
            bounded number of attempts).
    """
    if high <= low:
        raise ValueError(f"empty range [{low}, {high})")
    # Expected gap between primes near x is ln(x); 64 * ln(high) draws make
    # failure probability negligible for any interval that contains primes.
    attempts = max(1000, 64 * high.bit_length())
    for _ in range(attempts):
        candidate = rng.randrange(low, high) | 1
        if candidate >= low and is_probable_prime(candidate, rng):
            return candidate
    raise ValueError(f"no prime found in [{low}, {high}) after {attempts} draws")
