"""Parallel modular-exponentiation engine (the PR-2 tentpole).

Every expensive operation in the crypto layer -- randomness-pool refills
(``r^n mod n^2``), batch encryption, batch decryption, DGK bit
encryption -- reduces to an *array of independent modexp jobs*
``(base, exponent, modulus)``.  :class:`ModexpEngine` executes such
arrays either serially (the default, bit-identical to the seed-era inner
loops) or sharded across a process pool, so offline wall-clock scales
with cores on multi-core hosts.  Job arrays are plain integer tuples --
picklable, key-material-free bytes on the worker boundary.

Design rules (see DESIGN.md, "Parallel modexp engine"):

- **Bit-identical results.** The engine never changes *what* is
  computed, only *where*: every high-level helper draws randomness from
  the caller's RNG in exactly the order the serial code path does, then
  ships the pure ``pow`` work to workers.  Engine-vs-serial equivalence
  is property-tested for pool fills, batch encryption, batch decryption,
  and DGK bit encryption.
- **Serial fallback.** ``workers <= 1``, batches below
  ``min_parallel_jobs``, or a pool that cannot be spawned (sandboxed
  hosts) all run the jobs in-process; the fallback is recorded in
  :meth:`report`, never raised.
- **Trust boundary.** Worker processes belong to the party that owns the
  engine call: refill jobs carry only public-key material
  ``(r, n, n^2)``; CRT-split decryption jobs carry ``p``/``q``-derived
  moduli and are only ever issued by the private-key holder for its own
  ciphertexts -- the same boundary as the in-process CRT decrypt.
"""

from __future__ import annotations

import os
import threading
from typing import TYPE_CHECKING, Iterable, Sequence

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (paillier types)
    import random

    from repro.crypto.paillier import (
        PaillierCiphertext,
        PaillierPrivateKey,
        PaillierPublicKey,
    )
    from repro.crypto.precompute import RandomnessPool

ModexpJob = tuple  # (base, exponent, modulus)


class EngineError(ValueError):
    """Raised on invalid engine parameters or malformed job arrays."""


def _modexp_chunk(jobs: Sequence[ModexpJob]) -> list[int]:
    """Worker entry point: run one shard of jobs (top-level: picklable)."""
    return [pow(base, exponent, modulus) for base, exponent, modulus in jobs]


def _modexp_chunk_cached(jobs: Sequence[ModexpJob]) -> list[int]:
    """In-process variant of :func:`_modexp_chunk` behind the powmod memo.

    Worker processes keep the plain version (their memory is not shared,
    so a memo there only burns RAM); in-process execution shares the
    :func:`~repro.crypto.integer_math.cached_pow` memo with the online
    paths, which is what lets a prefill of already-seen factors cost
    dict hits instead of exponentiations.
    """
    from repro.crypto.integer_math import cached_pow
    return [cached_pow(base, exponent, modulus)
            for base, exponent, modulus in jobs]


class ModexpEngine:
    """Executes arrays of modexp jobs, serially or across a process pool.

    Args:
        workers: process count.  ``None`` auto-sizes to the host's CPU
            count; ``0`` or ``1`` means serial execution (no pool is ever
            spawned).
        min_parallel_jobs: batches smaller than this run serially even
            when workers are available -- below it the fork/pickle
            round-trip costs more than the modexps.
        shards_per_worker: each parallel batch is split into
            ``workers * shards_per_worker`` chunks so an uneven job mix
            cannot leave workers idle behind one heavy shard.
    """

    def __init__(self, workers: int | None = None,
                 min_parallel_jobs: int = 32,
                 shards_per_worker: int = 2):
        if workers is None:
            workers = os.cpu_count() or 1
        if workers < 0:
            raise EngineError(f"workers must be >= 0, got {workers}")
        if min_parallel_jobs < 1:
            raise EngineError(
                f"min_parallel_jobs must be >= 1, got {min_parallel_jobs}")
        if shards_per_worker < 1:
            raise EngineError(
                f"shards_per_worker must be >= 1, got {shards_per_worker}")
        self.workers = max(1, workers)
        self.min_parallel_jobs = min_parallel_jobs
        self.shards_per_worker = shards_per_worker
        self._executor = None
        self._pool_broken = False
        # One engine is shared by every pairwise session of a mesh, and
        # concurrent passes call it from several threads: the lock keeps
        # the accounting counters exact and executor creation single.
        self._lock = threading.Lock()
        self.batches = 0
        self.jobs = 0
        self.parallel_batches = 0
        self.parallel_modexps = 0
        self.fallbacks = 0
        self.warmups = 0
        # Shard-utilization accounting: chunks actually dispatched vs
        # the slots a perfectly even split would fill.
        self.chunks = 0
        self.chunk_slots = 0

    # -- lifecycle ---------------------------------------------------------

    def _ensure_executor(self):
        with self._lock:
            if self._executor is not None:
                return self._executor
            if self._pool_broken:
                return None
            try:
                from concurrent.futures import ProcessPoolExecutor
                self._executor = ProcessPoolExecutor(
                    max_workers=self.workers)
            except Exception:  # sandboxed host: no semaphores/fork allowed
                self._pool_broken = True
                return None
            return self._executor

    def warm_up(self) -> bool:
        """Spawn the worker pool now, outside any timed online phase.

        The first parallel batch otherwise pays process-pool startup
        (fork/spawn plus interpreter boot per worker) inside whatever
        the caller is measuring.  Submitting the warm-up chunks forces
        the executor to create every worker process (one is spawned per
        pending item up to ``workers``), and several small chunks per
        worker are used so the work spreads across workers as they come
        up rather than being drained by the first one to boot.  A
        still-booting worker on a spawn-start platform finishes its
        startup concurrently with (not inside) the caller's next timed
        region.  Serial engines (``workers <= 1``) and hosts that cannot
        spawn a pool return ``False`` and stay serial; the warm-up never
        changes what any later batch computes.
        """
        if self.workers <= 1:
            return False
        executor = self._ensure_executor()
        if executor is None:
            return False
        try:
            chunk = [(3, 65537, 2**61 - 1)] * 8  # cheap, not instant
            for _ in executor.map(_modexp_chunk,
                                  [chunk] * (4 * self.workers)):
                pass
        except Exception:  # pool died during spawn: degrade to serial
            self._pool_broken = True
            self._executor = None
            return False
        self.warmups += 1
        return True

    def close(self) -> None:
        """Shut the worker pool down; the engine then runs serially."""
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None
        self._pool_broken = True

    def __enter__(self) -> "ModexpEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def report(self) -> dict[str, int | float]:
        """Execution accounting for benchmarks and the CLI summary.

        ``jobs`` counts *logical* items handed to the engine (one per
        plaintext/ciphertext/factor, including fully-pooled encryptions
        that execute zero modexps); ``parallel_modexps`` counts raw
        modexp jobs actually executed on workers (CRT decryption runs
        two per ciphertext), so the two are deliberately not comparable.
        """
        with self._lock:
            chunks, slots = self.chunks, self.chunk_slots
        return {
            "workers": self.workers,
            "batches": self.batches,
            "jobs": self.jobs,
            "parallel_batches": self.parallel_batches,
            "parallel_modexps": self.parallel_modexps,
            "fallbacks": self.fallbacks,
            "warmups": self.warmups,
            "chunks": chunks,
            "chunk_slots": slots,
            "chunk_utilization": (round(chunks / slots, 4)
                                  if slots else 0.0),
        }

    # -- core executor -----------------------------------------------------

    def _parallel_eligible(self, job_count: int) -> bool:
        """Whether a batch of this size would be sharded across workers."""
        return self.workers > 1 and job_count >= self.min_parallel_jobs

    def _count(self, job_count: int) -> None:
        """Uniform accounting: one batch, ``job_count`` logical jobs.

        Every public operation counts exactly once at entry -- including
        fully-pooled encrypt batches that end up executing zero modexps
        -- so ``report()`` means the same thing on every code path.
        """
        with self._lock:
            self.batches += 1
            self.jobs += max(job_count, 0)

    def modexp_batch(self, jobs: Iterable[ModexpJob]) -> list[int]:
        """``[pow(b, e, m) for (b, e, m) in jobs]``, possibly sharded."""
        jobs = list(jobs)
        self._count(len(jobs))
        return self._execute(jobs)

    def _execute(self, jobs: list[ModexpJob]) -> list[int]:
        """Run jobs without accounting (callers counted at entry)."""
        if not self._parallel_eligible(len(jobs)):
            return _modexp_chunk_cached(jobs)
        executor = self._ensure_executor()
        if executor is None:
            with self._lock:
                self.fallbacks += 1
            return _modexp_chunk_cached(jobs)
        shard_count = min(len(jobs), self.workers * self.shards_per_worker)
        step = (len(jobs) + shard_count - 1) // shard_count
        shards = [jobs[start:start + step]
                  for start in range(0, len(jobs), step)]
        try:
            results: list[int] = []
            for chunk in executor.map(_modexp_chunk, shards):
                results.extend(chunk)
        except Exception:  # a worker died mid-batch: degrade, stay correct
            with self._lock:
                self._pool_broken = True
                self._executor = None
                self.fallbacks += 1
            return _modexp_chunk_cached(jobs)
        with self._lock:
            self.parallel_batches += 1
            self.parallel_modexps += len(jobs)
            self.chunks += len(shards)
            self.chunk_slots += self.workers * self.shards_per_worker
        return results

    # -- high-level operations --------------------------------------------

    def fill_pool(self, pool: "RandomnessPool", count: int) -> None:
        """Offline pool refill: RNG draws stay in-process, modexps shard.

        Bit-identical to ``pool.refill(count)``: the randomness units are
        drawn from ``pool.rng`` in the same order, so the deposited
        factors are exactly the ones the serial refill would queue.
        Workers see only ``(r, n, n^2)`` -- public-key material.
        """
        self._count(count)
        if not self._parallel_eligible(count):
            pool.refill(count)
            return
        public = pool.public_key
        units = pool.draw_units(count)
        factors = self._execute(
            [(r, public.n, public.n_squared) for r in units])
        pool.deposit(factors)

    def encrypt_batch(self, public: "PaillierPublicKey",
                      plaintexts: Sequence[int], rng: "random.Random",
                      pool: "RandomnessPool | None" = None,
                      ) -> "list[PaillierCiphertext]":
        """Batch Paillier encryption with the ``r^n`` powmods sharded.

        Consumes pool factors and RNG draws in exactly the order of
        ``public.encrypt_batch`` (pop per plaintext, on-demand draw per
        miss), so the produced ciphertexts are bit-identical to the
        serial path under the same RNG state.
        """
        from repro.crypto.paillier import PaillierCiphertext, PaillierError

        if pool is not None and pool.public_key != public:
            raise PaillierError("randomness pool bound to a different key")
        plaintexts = list(plaintexts)
        self._count(len(plaintexts))
        if not self._parallel_eligible(len(plaintexts)):
            # Serial: run the seed-era per-item path verbatim.
            return public.encrypt_batch(plaintexts, rng, pool)
        factors = self._gather_factors(public, len(plaintexts), rng, pool)
        return [PaillierCiphertext(public,
                                   public.raw_encrypt_with_factor(m, factor))
                for m, factor in zip(plaintexts, factors)]

    def _gather_factors(self, public: "PaillierPublicKey", count: int,
                        rng: "random.Random",
                        pool: "RandomnessPool | None") -> list[int]:
        """``count`` randomness factors in the serial pop/miss draw order.

        The one copy of the subtle part shared by :meth:`encrypt_batch`
        and :meth:`encryption_factors` (no accounting -- callers count):
        each slot pops the pool first (counting consumption and misses
        exactly as ``pool.encryption_factor`` does), misses draw their
        randomness unit in slot order from the pool's RNG (or ``rng``
        when unpooled), and the miss powmods run as one sharded batch
        before being backfilled by position.
        """
        factors: list[int | None] = []
        pending: list[tuple[int, int]] = []  # (position, randomness unit)
        for position in range(count):
            if pool is not None:
                factor = pool.try_factor()
                if factor is not None:
                    factors.append(factor)
                    continue
                pending.append((position, public.random_unit(pool.rng)))
            else:
                pending.append((position, public.random_unit(rng)))
            factors.append(None)
        if pending:
            computed = self._execute(
                [(r, public.n, public.n_squared) for _, r in pending])
            for (position, _), factor in zip(pending, computed):
                factors[position] = factor
        return factors

    def encryption_factors(self, public: "PaillierPublicKey", count: int,
                           rng: "random.Random",
                           pool: "RandomnessPool | None" = None,
                           ) -> list[int]:
        """``count`` encryption/rerandomization factors, serial draw order.

        For masker-side loops that alternate encrypt and rerandomize
        per item (Section 5 share generation): every slot pops the pool
        first -- counting consumption and misses exactly as the
        per-item ``encrypt``/``rerandomize`` path does -- and the
        ``r^n mod n^2`` powmods of the misses run as one sharded batch.
        RNG draws happen in slot order, so the returned factors are
        bit-identical to the serial interleaved sequence under the same
        RNG state (property-tested in ``tests/crypto/test_engine.py``).
        """
        from repro.crypto.paillier import PaillierError

        if pool is not None and pool.public_key != public:
            raise PaillierError("randomness pool bound to a different key")
        self._count(count)
        return self._gather_factors(public, count, rng, pool)

    def decrypt_raw_batch(self, private: "PaillierPrivateKey",
                          ciphertext_values: Sequence[int]) -> list[int]:
        """Batch Paillier decryption, CRT-split into per-prime shards.

        Each ciphertext becomes two half-width jobs (mod ``p^2`` and
        ``q^2``) when the key carries CRT constants -- the per-worker
        split the key holder's own processes run -- or one full-width
        ``c^lambda mod n^2`` job otherwise.  Results are bit-identical
        to ``private.decrypt_raw_batch``.
        """
        from repro.crypto.integer_math import crt_pair
        from repro.crypto.paillier import (
            PaillierError,
            _l_quotient,
            _paillier_l,
        )

        values = list(ciphertext_values)
        if getattr(private, "sealed", False):
            # Sanctioned discard boundary: a sealed key means the
            # decrypting party is remote in this process -- no secret
            # exists here, so no modexp runs.  The placeholder zeros
            # feed only frames the mirror discards (the bit-identical
            # equivalence bar proves that on every run); any *direct*
            # decrypt on the sealed key object still raises
            # PublicOnlyKeyError.
            return [0] * len(values)
        self._count(len(values))
        if not self._parallel_eligible(2 * len(values)):
            return private.decrypt_raw_batch(values)
        public = private.public_key
        n_sq = public.n_squared
        for value in values:
            if not 0 <= value < n_sq:
                raise PaillierError("ciphertext outside Z_{n^2}")
        if private.hp is None or private.hq is None:
            powers = self._execute(
                [(value, private.lam, n_sq) for value in values])
            return [(_paillier_l(u, public.n) * private.mu) % public.n
                    for u in powers]
        p, q = private.p, private.q
        p_sq, q_sq = p * p, q * q
        jobs: list[ModexpJob] = []
        for value in values:
            jobs.append((value, p - 1, p_sq))
            jobs.append((value, q - 1, q_sq))
        powers = self._execute(jobs)
        plaintexts = []
        for index in range(len(values)):
            m_p = (_l_quotient(powers[2 * index], p) * private.hp) % p
            m_q = (_l_quotient(powers[2 * index + 1], q) * private.hq) % q
            plaintexts.append(crt_pair(m_p, p, m_q, q))
        return plaintexts


_SERIAL_ENGINE: ModexpEngine | None = None


def default_engine() -> ModexpEngine:
    """The shared serial engine protocol code falls back to.

    Serial by construction: a bare primitive call (no session, no
    configured engine) must behave exactly like the seed-era inner loop,
    with zero process overhead.
    """
    global _SERIAL_ENGINE
    if _SERIAL_ENGINE is None:
        _SERIAL_ENGINE = ModexpEngine(workers=1)
    return _SERIAL_ENGINE
