"""Offline precomputation for Paillier: randomness pools and fixed bases.

Every Paillier encryption pays one full-width modular exponentiation
``r^n mod n^2`` for the randomness factor, and every rerandomization
pays the same again -- by far the dominant online cost of the DBSCAN
protocols (the plaintext part ``g^m`` is a single mulmod for the
standard ``g = n + 1`` choice).  Both factors depend only on the public
key, never on the plaintext, so they can be generated *before* the
protocol runs.  This module supplies the two precomputation tools:

- :class:`RandomnessPool` -- a per-(actor, public-key) queue of
  pregenerated factors ``r^n mod n^2``.  With a filled pool, online
  ``encrypt`` and ``rerandomize`` each collapse to one mulmod; an empty
  pool falls back to on-demand generation (identical results, seed-era
  cost), so pools never change correctness -- only where the modexp time
  is spent.  This is the standard offline/online split of the MPC
  literature.
- :class:`FixedBaseExp` -- windowed fixed-base exponentiation for the
  ``g^m`` term when a keypair uses the paper's literal "random g"
  (``random_g=True``) instead of ``n + 1``: one table per ``(g, n^2)``
  turns each encryption's ``g^m`` into ``~bits/window`` mulmods.

Security note: a pooled factor is exactly a fresh factor drawn earlier
from the same party RNG -- pooling reorders randomness generation in
time, it does not weaken or correlate it.  Each factor is consumed at
most once (the queue pops).
"""

from __future__ import annotations

import asyncio
import random
from collections import deque
from typing import TYPE_CHECKING

from repro.crypto.integer_math import cached_pow

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (paillier types)
    from repro.crypto.paillier import PaillierPublicKey


class PrecomputeError(ValueError):
    """Raised on invalid pool or table parameters."""


class RandomnessPool:
    """Pregenerated Paillier encryption factors ``r^n mod n^2``.

    A pool belongs to one *actor* (whose private RNG ``rng`` supplies
    every ``r``) and one *public key* (under which the actor encrypts or
    rerandomizes).  Encryption factors and rerandomization units are the
    same algebraic object -- a random ``r^n mod n^2``, i.e. a fresh
    encryption of zero -- so one queue serves both uses; the two named
    accessors exist for call-site clarity.

    Accounting attributes (read by benchmarks and tests):

    - ``pregenerated``: factors produced by :meth:`refill` (offline).
    - ``consumed``: factors handed out in total.
    - ``misses``: factors generated on demand because the queue was
      empty (online cost identical to the unpooled path).
    """

    __slots__ = ("public_key", "rng", "_factors", "pregenerated",
                 "consumed", "misses")

    def __init__(self, public_key: "PaillierPublicKey", rng: random.Random):
        self.public_key = public_key
        self.rng = rng
        self._factors: deque[int] = deque()
        self.pregenerated = 0
        self.consumed = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._factors)

    def _fresh_factor(self) -> int:
        public = self.public_key
        r = public.random_unit(self.rng)
        return cached_pow(r, public.n, public.n_squared)

    def draw_units(self, count: int) -> list[int]:
        """Draw ``count`` randomness units from the actor's RNG, in order.

        The RNG half of :meth:`refill`, split out so a
        :class:`~repro.crypto.engine.ModexpEngine` can keep the private
        randomness draws in-process while sharding the ``r^n`` powmods
        across workers.  Consuming the same RNG in the same order keeps
        engine fills bit-identical to serial fills.
        """
        if count < 0:
            raise PrecomputeError(f"cannot draw {count} units")
        return [self.public_key.random_unit(self.rng) for _ in range(count)]

    def deposit(self, factors: list[int]) -> None:
        """Queue externally computed factors (the modexp half of refill)."""
        self._factors.extend(factors)
        self.pregenerated += len(factors)

    def refill(self, count: int) -> None:
        """Offline phase: pregenerate ``count`` factors."""
        units = self.draw_units(count)
        public = self.public_key
        self.deposit([cached_pow(r, public.n, public.n_squared)
                      for r in units])

    def try_factor(self) -> int | None:
        """Pop one factor if available; ``None`` (and a counted miss)
        when the queue is empty, letting batched callers collect their
        misses and generate them in one sharded modexp batch."""
        self.consumed += 1
        if self._factors:
            return self._factors.popleft()
        self.misses += 1
        return None

    def encryption_factor(self) -> int:
        """Pop one factor; falls back to on-demand generation when empty."""
        factor = self.try_factor()
        return self._fresh_factor() if factor is None else factor

    def rerandomization_unit(self) -> int:
        """Alias of :meth:`encryption_factor` (same object, see class doc)."""
        return self.encryption_factor()

    def report(self) -> dict[str, int]:
        """Accounting snapshot for benchmarks (E6 ablation, run_quick)."""
        return {
            "pregenerated": self.pregenerated,
            "consumed": self.consumed,
            "misses": self.misses,
            "available": len(self._factors),
        }


def combine_pool_reports(reports) -> dict[str, int]:
    """Sum per-pool accounting dicts (from :meth:`RandomnessPool.report`)
    into one totals line -- the shape the CLI summary and the benchmark
    snapshots both print."""
    totals = {"pregenerated": 0, "consumed": 0, "misses": 0, "available": 0}
    for report in reports:
        for key in totals:
            totals[key] += report[key]
    return totals


class FixedBaseExp:
    """Windowed fixed-base modular exponentiation.

    Precomputes ``base^(j * 2^(i*window))`` for every window position
    ``i`` and digit ``j``, so any ``base^e`` with ``e < 2^max_bits``
    costs at most ``ceil(max_bits / window) - 1`` multiplications and no
    squarings.  Worth building once per ``(g, n^2)`` pair when the
    Paillier key uses a random ``g`` (the ``n + 1`` default never needs
    a table -- its ``g^m`` is already a single mulmod).
    """

    __slots__ = ("modulus", "window", "max_bits", "_table")

    def __init__(self, base: int, modulus: int, max_bits: int,
                 window: int = 4):
        if modulus < 2:
            raise PrecomputeError(f"modulus must be >= 2, got {modulus}")
        if max_bits < 1:
            raise PrecomputeError(f"max_bits must be >= 1, got {max_bits}")
        if window < 1:
            raise PrecomputeError(f"window must be >= 1, got {window}")
        self.modulus = modulus
        self.window = window
        self.max_bits = max_bits
        digits = 1 << window
        block = base % modulus
        table: list[tuple[int, ...]] = []
        for _ in range((max_bits + window - 1) // window):
            row = [1]
            for _ in range(digits - 1):
                row.append((row[-1] * block) % modulus)
            table.append(tuple(row))
            # Advance the block base to base^(2^((i+1)*window)).
            block = (row[-1] * block) % modulus
        self._table = tuple(table)

    def pow(self, exponent: int) -> int:
        """``base^exponent mod modulus`` via table lookups."""
        if not 0 <= exponent < (1 << self.max_bits):
            raise PrecomputeError(
                f"exponent {exponent} outside [0, 2^{self.max_bits})")
        mask = (1 << self.window) - 1
        result = 1
        position = 0
        while exponent:
            digit = exponent & mask
            if digit:
                result = (result * self._table[position][digit]) % self.modulus
            exponent >>= self.window
            position += 1
        return result


class RandomnessLease:
    """One session's registration with a daemon :class:`RandomnessService`.

    A lease holds the session's own :class:`RandomnessPool` objects --
    factor *values* are never shared across sessions, because each pool
    draws from a per-session forked RNG stream and sharing values would
    break the bit-identity contract between runtimes.  What the lease
    buys the session is the service's cross-session knowledge: how many
    factors past sessions under the same keypair actually consumed, so
    the pools can be filled to that demand up front (and topped up in
    idle time) instead of missing their way through the first run.

    Accounting attributes (read by ``runtime_info`` and tests):

    - ``prefilled``: factors filled synchronously at registration.
    - ``background_refilled``: factors added by the idle refill
      coroutine while the session ran.
    - ``busy``: count of in-flight secure queries, incremented by the
      pass runtime around each one (several pair runtimes share one
      lease); the idle refiller skips busy leases so background
      deposits never interleave with an in-flight (restartable)
      query attempt.
    """

    __slots__ = ("service", "session_id", "pools", "busy", "prefilled",
                 "background_refilled", "released")

    def __init__(self, service: "RandomnessService", session_id: str):
        self.service = service
        self.session_id = session_id
        self.pools: list[tuple[tuple[str, bool], RandomnessPool]] = []
        self.busy = 0
        self.prefilled = 0
        self.background_refilled = 0
        self.released = False

    def register_pool(self, pool: RandomnessPool, owner_digest: str,
                      actor_is_owner: bool) -> int:
        """Adopt one session pool; prefill it to the learned demand.

        ``owner_digest`` is the Paillier public-key digest of the pool's
        key owner -- the cross-session identity demand is scoped by
        (factor *counts* transfer between sessions of the same keypair;
        nothing else does).  Returns the number of factors prefilled.
        """
        if self.released:
            raise PrecomputeError(
                f"lease {self.session_id!r} already released")
        key = (owner_digest[:16], bool(actor_is_owner))
        self.pools.append((key, pool))
        target = self.service.demand_for(key)
        shortfall = max(0, target - len(pool))
        if shortfall:
            self.service.fill(pool, shortfall)
            self.prefilled += shortfall
        return shortfall

    def hit_report(self) -> dict[str, int]:
        """Consumption totals over the lease's pools (hit = no miss)."""
        totals = combine_pool_reports(
            pool.report() for __, pool in self.pools)
        totals["prefilled"] = self.prefilled
        totals["background_refilled"] = self.background_refilled
        totals["hits"] = totals["consumed"] - totals["misses"]
        return totals


class RandomnessService:
    """Daemon-wide offline-phase broker: demand learning + idle refill.

    Lives on the daemon event loop (single-threaded by construction; no
    locks).  Three jobs:

    1. **Demand model.**  Keyed by ``(key digest[:16], actor-is-owner)``
       -- the two pool roles a keypair induces -- the service remembers
       the peak factor consumption any released session reported.  A new
       session's pools are prefilled to that target at registration, so
       session N+1 starts warm from session N's experience even though
       their factor values come from disjoint per-session RNG streams.
    2. **Idle refill.**  :meth:`refill_idle` is a background coroutine
       that tops up registered pools toward target in small chunks
       between protocol work, yielding to the loop after every chunk
       and skipping leases that are mid-query.
    3. **Fixed-base tables.**  :class:`FixedBaseExp` tables depend only
       on the public key, so they are cached per key digest and shared
       across every session under that keypair (``random_g`` keys
       only; the ``n + 1`` default never builds one).
    """

    def __init__(self, engine=None, *, refill_chunk: int = 8,
                 idle_interval_s: float = 0.02):
        if refill_chunk < 1:
            raise PrecomputeError(
                f"refill_chunk must be >= 1, got {refill_chunk}")
        self.engine = engine
        self.refill_chunk = refill_chunk
        self.idle_interval_s = idle_interval_s
        self._demand: dict[tuple[str, bool], int] = {}
        self._leases: dict[str, RandomnessLease] = {}
        self._tables: dict[tuple[str, int, int], FixedBaseExp] = {}
        self.sessions_served = 0
        self.factors_prefilled = 0
        self.factors_background = 0
        # Lifetime consumption totals folded in at lease release -- the
        # single source for the daemon-wide pool hit rate.
        self.factors_consumed = 0
        self.factors_missed = 0
        self.table_builds = 0
        self.table_hits = 0
        self._closed = False

    # -- leases -------------------------------------------------------------

    def lease(self, session_id: str) -> RandomnessLease:
        if self._closed:
            raise PrecomputeError("randomness service is closed")
        if session_id in self._leases:
            raise PrecomputeError(
                f"session {session_id!r} already holds a lease")
        grant = RandomnessLease(self, session_id)
        self._leases[session_id] = grant
        return grant

    def release(self, session_id: str) -> dict[str, int]:
        """End a lease: learn its demand, return its hit accounting."""
        grant = self._leases.pop(session_id, None)
        if grant is None:
            raise PrecomputeError(f"no lease for session {session_id!r}")
        grant.released = True
        for key, pool in grant.pools:
            self._demand[key] = max(self._demand.get(key, 0), pool.consumed)
        self.sessions_served += 1
        self.factors_prefilled += grant.prefilled
        self.factors_background += grant.background_refilled
        report = grant.hit_report()
        self.factors_consumed += report["consumed"]
        self.factors_missed += report["misses"]
        return report

    def demand_for(self, key: tuple[str, bool]) -> int:
        return self._demand.get(key, 0)

    def fill(self, pool: RandomnessPool, count: int) -> None:
        """Refill through the engine when one is attached (sharded
        modexps), serially otherwise -- bit-identical either way."""
        if count <= 0:
            return
        if self.engine is not None:
            self.engine.fill_pool(pool, count)
        else:
            pool.refill(count)

    # -- background refill --------------------------------------------------

    def refill_step(self) -> int:
        """Top up at most one chunk across all idle leases; returns the
        number of factors generated (0 = every pool is at target)."""
        for grant in list(self._leases.values()):
            if grant.busy or grant.released:
                continue
            for key, pool in grant.pools:
                shortfall = self.demand_for(key) - len(pool)
                if shortfall <= 0:
                    continue
                count = min(self.refill_chunk, shortfall)
                self.fill(pool, count)
                grant.background_refilled += count
                return count
        return 0

    async def refill_idle(self) -> None:
        """Idle-time top-up loop; cancel to stop (daemon teardown)."""
        while not self._closed:
            generated = self.refill_step()
            # A productive step yields briefly so protocol coroutines
            # preempt it; a dry pass sleeps until there is plausible
            # new demand.
            await asyncio.sleep(0 if generated else self.idle_interval_s)

    # -- fixed-base tables --------------------------------------------------

    def fixed_base_table(self, base: int, modulus: int, max_bits: int,
                         key_digest: str, *, window: int = 4) -> FixedBaseExp:
        """Shared ``g^m`` table for one keypair, built at most once."""
        cache_key = (key_digest[:16], max_bits, window)
        table = self._tables.get(cache_key)
        if table is None:
            table = FixedBaseExp(base, modulus, max_bits, window=window)
            self._tables[cache_key] = table
            self.table_builds += 1
        else:
            self.table_hits += 1
        return table

    # -- reporting / lifecycle ----------------------------------------------

    def report(self) -> dict[str, int]:
        return {
            "sessions_served": self.sessions_served,
            "active_leases": len(self._leases),
            "demand_entries": len(self._demand),
            "factors_prefilled": self.factors_prefilled,
            "factors_background": self.factors_background,
            "factors_consumed": self.factors_consumed,
            "factors_missed": self.factors_missed,
            "factors_hit": self.factors_consumed - self.factors_missed,
            "table_builds": self.table_builds,
            "table_hits": self.table_hits,
        }

    def close(self) -> None:
        self._closed = True
        self._leases.clear()
        self._tables.clear()
