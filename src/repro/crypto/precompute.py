"""Offline precomputation for Paillier: randomness pools and fixed bases.

Every Paillier encryption pays one full-width modular exponentiation
``r^n mod n^2`` for the randomness factor, and every rerandomization
pays the same again -- by far the dominant online cost of the DBSCAN
protocols (the plaintext part ``g^m`` is a single mulmod for the
standard ``g = n + 1`` choice).  Both factors depend only on the public
key, never on the plaintext, so they can be generated *before* the
protocol runs.  This module supplies the two precomputation tools:

- :class:`RandomnessPool` -- a per-(actor, public-key) queue of
  pregenerated factors ``r^n mod n^2``.  With a filled pool, online
  ``encrypt`` and ``rerandomize`` each collapse to one mulmod; an empty
  pool falls back to on-demand generation (identical results, seed-era
  cost), so pools never change correctness -- only where the modexp time
  is spent.  This is the standard offline/online split of the MPC
  literature.
- :class:`FixedBaseExp` -- windowed fixed-base exponentiation for the
  ``g^m`` term when a keypair uses the paper's literal "random g"
  (``random_g=True``) instead of ``n + 1``: one table per ``(g, n^2)``
  turns each encryption's ``g^m`` into ``~bits/window`` mulmods.

Security note: a pooled factor is exactly a fresh factor drawn earlier
from the same party RNG -- pooling reorders randomness generation in
time, it does not weaken or correlate it.  Each factor is consumed at
most once (the queue pops).
"""

from __future__ import annotations

import random
from collections import deque
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (paillier types)
    from repro.crypto.paillier import PaillierPublicKey


class PrecomputeError(ValueError):
    """Raised on invalid pool or table parameters."""


class RandomnessPool:
    """Pregenerated Paillier encryption factors ``r^n mod n^2``.

    A pool belongs to one *actor* (whose private RNG ``rng`` supplies
    every ``r``) and one *public key* (under which the actor encrypts or
    rerandomizes).  Encryption factors and rerandomization units are the
    same algebraic object -- a random ``r^n mod n^2``, i.e. a fresh
    encryption of zero -- so one queue serves both uses; the two named
    accessors exist for call-site clarity.

    Accounting attributes (read by benchmarks and tests):

    - ``pregenerated``: factors produced by :meth:`refill` (offline).
    - ``consumed``: factors handed out in total.
    - ``misses``: factors generated on demand because the queue was
      empty (online cost identical to the unpooled path).
    """

    __slots__ = ("public_key", "rng", "_factors", "pregenerated",
                 "consumed", "misses")

    def __init__(self, public_key: "PaillierPublicKey", rng: random.Random):
        self.public_key = public_key
        self.rng = rng
        self._factors: deque[int] = deque()
        self.pregenerated = 0
        self.consumed = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._factors)

    def _fresh_factor(self) -> int:
        public = self.public_key
        r = public.random_unit(self.rng)
        return pow(r, public.n, public.n_squared)

    def draw_units(self, count: int) -> list[int]:
        """Draw ``count`` randomness units from the actor's RNG, in order.

        The RNG half of :meth:`refill`, split out so a
        :class:`~repro.crypto.engine.ModexpEngine` can keep the private
        randomness draws in-process while sharding the ``r^n`` powmods
        across workers.  Consuming the same RNG in the same order keeps
        engine fills bit-identical to serial fills.
        """
        if count < 0:
            raise PrecomputeError(f"cannot draw {count} units")
        return [self.public_key.random_unit(self.rng) for _ in range(count)]

    def deposit(self, factors: list[int]) -> None:
        """Queue externally computed factors (the modexp half of refill)."""
        self._factors.extend(factors)
        self.pregenerated += len(factors)

    def refill(self, count: int) -> None:
        """Offline phase: pregenerate ``count`` factors."""
        units = self.draw_units(count)
        public = self.public_key
        self.deposit([pow(r, public.n, public.n_squared) for r in units])

    def try_factor(self) -> int | None:
        """Pop one factor if available; ``None`` (and a counted miss)
        when the queue is empty, letting batched callers collect their
        misses and generate them in one sharded modexp batch."""
        self.consumed += 1
        if self._factors:
            return self._factors.popleft()
        self.misses += 1
        return None

    def encryption_factor(self) -> int:
        """Pop one factor; falls back to on-demand generation when empty."""
        factor = self.try_factor()
        return self._fresh_factor() if factor is None else factor

    def rerandomization_unit(self) -> int:
        """Alias of :meth:`encryption_factor` (same object, see class doc)."""
        return self.encryption_factor()

    def report(self) -> dict[str, int]:
        """Accounting snapshot for benchmarks (E6 ablation, run_quick)."""
        return {
            "pregenerated": self.pregenerated,
            "consumed": self.consumed,
            "misses": self.misses,
            "available": len(self._factors),
        }


def combine_pool_reports(reports) -> dict[str, int]:
    """Sum per-pool accounting dicts (from :meth:`RandomnessPool.report`)
    into one totals line -- the shape the CLI summary and the benchmark
    snapshots both print."""
    totals = {"pregenerated": 0, "consumed": 0, "misses": 0, "available": 0}
    for report in reports:
        for key in totals:
            totals[key] += report[key]
    return totals


class FixedBaseExp:
    """Windowed fixed-base modular exponentiation.

    Precomputes ``base^(j * 2^(i*window))`` for every window position
    ``i`` and digit ``j``, so any ``base^e`` with ``e < 2^max_bits``
    costs at most ``ceil(max_bits / window) - 1`` multiplications and no
    squarings.  Worth building once per ``(g, n^2)`` pair when the
    Paillier key uses a random ``g`` (the ``n + 1`` default never needs
    a table -- its ``g^m`` is already a single mulmod).
    """

    __slots__ = ("modulus", "window", "max_bits", "_table")

    def __init__(self, base: int, modulus: int, max_bits: int,
                 window: int = 4):
        if modulus < 2:
            raise PrecomputeError(f"modulus must be >= 2, got {modulus}")
        if max_bits < 1:
            raise PrecomputeError(f"max_bits must be >= 1, got {max_bits}")
        if window < 1:
            raise PrecomputeError(f"window must be >= 1, got {window}")
        self.modulus = modulus
        self.window = window
        self.max_bits = max_bits
        digits = 1 << window
        block = base % modulus
        table: list[tuple[int, ...]] = []
        for _ in range((max_bits + window - 1) // window):
            row = [1]
            for _ in range(digits - 1):
                row.append((row[-1] * block) % modulus)
            table.append(tuple(row))
            # Advance the block base to base^(2^((i+1)*window)).
            block = (row[-1] * block) % modulus
        self._table = tuple(table)

    def pow(self, exponent: int) -> int:
        """``base^exponent mod modulus`` via table lookups."""
        if not 0 <= exponent < (1 << self.max_bits):
            raise PrecomputeError(
                f"exponent {exponent} outside [0, 2^{self.max_bits})")
        mask = (1 << self.window) - 1
        result = 1
        position = 0
        while exponent:
            digit = exponent & mask
            if digit:
                result = (result * self._table[position][digit]) % self.modulus
            exponent >>= self.window
            position += 1
        return result
