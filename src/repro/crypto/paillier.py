"""Paillier's additive homomorphic cryptosystem (paper Section 3.7).

The implementation follows the paper's description verbatim:

- Key generation chooses primes ``p, q`` with ``gcd(pq, (p-1)(q-1)) = 1``,
  sets ``n = pq`` and ``lambda = lcm(p-1, q-1)``, picks ``g`` in
  ``Z*_{n^2}`` and checks the modular inverse
  ``mu = (L(g^lambda mod n^2))^{-1} mod n`` exists, where
  ``L(u) = (u - 1) / n``.
- Encryption of ``m`` with randomness ``r``: ``c = g^m * r^n mod n^2``.
- Decryption: ``m = L(c^lambda mod n^2) * mu mod n``.

Homomorphic properties exploited by the protocols:

- ``D(E(m1) * E(m2) mod n^2) = m1 + m2 mod n``   (ciphertext product)
- ``D(E(m1)^m2 mod n^2) = m1 * m2 mod n``        (ciphertext power)

By default key generation uses ``g = n + 1``, the standard choice that
makes ``g^m = 1 + m*n (mod n^2)`` a cheap multiplication; passing
``random_g=True`` reproduces the paper's "select random integer g" step
literally (both satisfy the Section 3.7 equations and are property-tested
against each other).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from functools import lru_cache
from typing import TYPE_CHECKING

from repro.crypto.integer_math import cached_pow, lcm, mod_inverse
from repro.crypto.primes import generate_distinct_primes

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids import cycle)
    from repro.crypto.precompute import RandomnessPool


class PaillierError(ValueError):
    """Raised on malformed keys, out-of-range plaintexts, or key mismatches."""


@dataclass(frozen=True)
class PaillierPublicKey:
    """Public encryption key ``(n, g)`` from Section 3.7."""

    n: int
    g: int

    @property
    def n_squared(self) -> int:
        return self.n * self.n

    @property
    def bits(self) -> int:
        """Size of the modulus in bits (the 'key size' of benchmarks)."""
        return self.n.bit_length()

    def random_unit(self, rng: random.Random) -> int:
        """Random ``r`` in ``Z*_n`` (encryption randomness)."""
        while True:
            r = rng.randrange(1, self.n)
            # gcd check: for a semiprime n, non-units are multiples of p or
            # q, which are never hit in practice, but the spec requires it.
            if _gcd(r, self.n) == 1:
                return r

    def raw_encrypt(self, plaintext: int, r: int) -> int:
        """``c = g^m * r^n mod n^2`` with caller-supplied randomness.

        The Multiplication Protocol's ``faithful_shared_r`` mode needs to
        encrypt under a randomness value both parties agreed on, hence the
        explicit ``r`` parameter.
        """
        if not 0 <= plaintext < self.n:
            raise PaillierError(
                f"plaintext {plaintext} outside [0, n); encode signed values "
                "with SignedEncoder first"
            )
        n_sq = self.n_squared
        return (self._g_pow(plaintext) * cached_pow(r, self.n, n_sq)) % n_sq

    def raw_encrypt_with_factor(self, plaintext: int, factor: int) -> int:
        """``c = g^m * factor`` with a pregenerated factor ``r^n mod n^2``.

        The online half of the offline/online split: with the factor
        drawn from a :class:`~repro.crypto.precompute.RandomnessPool`
        (and ``g = n + 1``), encryption is two mulmods, no powmod.
        """
        if not 0 <= plaintext < self.n:
            raise PaillierError(
                f"plaintext {plaintext} outside [0, n); encode signed values "
                "with SignedEncoder first"
            )
        return (self._g_pow(plaintext) * factor) % self.n_squared

    def _g_pow(self, plaintext: int) -> int:
        """``g^plaintext mod n^2`` -- the deterministic half of encryption."""
        n_sq = self.n_squared
        if self.g == self.n + 1:
            # (n+1)^m = 1 + m*n (mod n^2): one mulmod instead of a powmod.
            return (1 + plaintext * self.n) % n_sq
        return _fixed_base_table(self.g, n_sq, self.n.bit_length()).pow(
            plaintext)

    def encrypt(self, plaintext: int, rng: random.Random,
                pool: "RandomnessPool | None" = None) -> "PaillierCiphertext":
        """Encrypt with fresh randomness drawn from ``rng``.

        With ``pool`` the randomness factor is taken from the pool
        instead (one mulmod online when the pool is filled); the result
        is a perfectly ordinary ciphertext either way.
        """
        if pool is not None:
            if pool.public_key != self:
                raise PaillierError("randomness pool bound to a different key")
            return PaillierCiphertext(
                self,
                self.raw_encrypt_with_factor(plaintext,
                                             pool.encryption_factor()))
        r = self.random_unit(rng)
        return PaillierCiphertext(self, self.raw_encrypt(plaintext, r))

    def encrypt_batch(self, plaintexts: list[int], rng: random.Random,
                      pool: "RandomnessPool | None" = None,
                      ) -> list["PaillierCiphertext"]:
        """Encrypt a batch; the entry point batched protocols call."""
        return [self.encrypt(plaintext, rng, pool) for plaintext in plaintexts]

    def encrypt_signed(self, value: int, rng: random.Random,
                       pool: "RandomnessPool | None" = None,
                       ) -> "PaillierCiphertext":
        """Encrypt a signed value using the half-range convention.

        Values in ``[-(n-1)//2, (n-1)//2]`` map to ``value mod n``;
        :meth:`PaillierPrivateKey.decrypt_signed` inverts the mapping.
        """
        half = (self.n - 1) // 2
        if not -half <= value <= half:
            raise PaillierError(f"signed value {value} exceeds +/-{half}")
        return self.encrypt(value % self.n, rng, pool)


@dataclass(frozen=True)
class PaillierPrivateKey:
    """Private decryption key ``(lambda, mu)`` with CRT acceleration data.

    ``hp``/``hq`` are the per-prime decryption constants
    ``L_p(g^{p-1} mod p^2)^{-1} mod p`` (and the q analogue).  When
    present, :meth:`decrypt_raw` exponentiates modulo ``p^2`` and ``q^2``
    separately and recombines -- roughly 3-4x faster than the
    full-modulus path, bit-identical results (property-tested).
    """

    public_key: PaillierPublicKey
    lam: int
    mu: int
    p: int
    q: int
    hp: int | None = None
    hq: int | None = None

    def decrypt_raw(self, ciphertext_value: int) -> int:
        """Decrypt an integer ciphertext; CRT path when constants exist."""
        n_sq = self.public_key.n_squared
        if not 0 <= ciphertext_value < n_sq:
            raise PaillierError("ciphertext outside Z_{n^2}")
        if self.hp is not None and self.hq is not None:
            return self._decrypt_crt(ciphertext_value)
        return self.decrypt_raw_standard(ciphertext_value)

    def decrypt_raw_standard(self, ciphertext_value: int) -> int:
        """``m = L(c^lambda mod n^2) * mu mod n`` -- the Section 3.7 path."""
        n = self.public_key.n
        n_sq = self.public_key.n_squared
        if not 0 <= ciphertext_value < n_sq:
            raise PaillierError("ciphertext outside Z_{n^2}")
        u = cached_pow(ciphertext_value, self.lam, n_sq)
        return (_paillier_l(u, n) * self.mu) % n

    def _decrypt_crt(self, ciphertext_value: int) -> int:
        from repro.crypto.integer_math import crt_pair
        p, q = self.p, self.q
        m_p = (_l_quotient(cached_pow(ciphertext_value, p - 1, p * p), p)
               * self.hp) % p
        m_q = (_l_quotient(cached_pow(ciphertext_value, q - 1, q * q), q)
               * self.hq) % q
        return crt_pair(m_p, p, m_q, q)

    def decrypt(self, ciphertext: "PaillierCiphertext") -> int:
        if ciphertext.public_key != self.public_key:
            raise PaillierError("ciphertext was encrypted under a different key")
        return self.decrypt_raw(ciphertext.value)

    def decrypt_raw_batch(self, ciphertext_values: list[int]) -> list[int]:
        """Decrypt a batch of integer ciphertexts (batched replies)."""
        return [self.decrypt_raw(value) for value in ciphertext_values]

    def decrypt_batch(self,
                      ciphertexts: list["PaillierCiphertext"]) -> list[int]:
        """Decrypt a batch of bound ciphertexts."""
        return [self.decrypt(ciphertext) for ciphertext in ciphertexts]

    def decrypt_signed(self, ciphertext: "PaillierCiphertext") -> int:
        """Inverse of :meth:`PaillierPublicKey.encrypt_signed`."""
        plain = self.decrypt(ciphertext)
        n = self.public_key.n
        return plain - n if plain > (n - 1) // 2 else plain


@dataclass(frozen=True)
class PaillierKeyPair:
    public_key: PaillierPublicKey
    private_key: PaillierPrivateKey


class PaillierCiphertext:
    """A ciphertext bound to its public key, with homomorphic operators.

    ``a + b`` and ``a + int`` are homomorphic additions; ``a * int`` is the
    homomorphic plaintext multiplication.  These map exactly onto the two
    "homomorphic properties" equations of Section 3.7.
    """

    __slots__ = ("public_key", "value")

    def __init__(self, public_key: PaillierPublicKey, value: int):
        self.public_key = public_key
        self.value = value % public_key.n_squared

    def __add__(self, other: "PaillierCiphertext | int") -> "PaillierCiphertext":
        n_sq = self.public_key.n_squared
        if isinstance(other, PaillierCiphertext):
            if other.public_key != self.public_key:
                raise PaillierError("cannot add ciphertexts under different keys")
            return PaillierCiphertext(self.public_key,
                                      (self.value * other.value) % n_sq)
        # Adding a plaintext constant: multiply by g^other (deterministic
        # encryption of the constant with r=1; callers rerandomize when the
        # result crosses a trust boundary).
        g_m = self.public_key.raw_encrypt_constant(other)
        return PaillierCiphertext(self.public_key, (self.value * g_m) % n_sq)

    __radd__ = __add__

    def __mul__(self, scalar: int) -> "PaillierCiphertext":
        if not isinstance(scalar, int):
            raise PaillierError(
                f"can only multiply by integer plaintexts, got {type(scalar)}"
            )
        n = self.public_key.n
        return PaillierCiphertext(
            self.public_key,
            cached_pow(self.value, scalar % n, self.public_key.n_squared),
        )

    __rmul__ = __mul__

    def __sub__(self, other: "PaillierCiphertext | int") -> "PaillierCiphertext":
        if isinstance(other, PaillierCiphertext):
            return self + (other * -1)
        return self + (-other)

    def rerandomize(self, rng: random.Random,
                    pool: "RandomnessPool | None" = None,
                    ) -> "PaillierCiphertext":
        """Multiply by a fresh encryption of zero.

        Strips any algebraic relationship between this ciphertext and the
        operands it was derived from -- required before a ciphertext built
        with homomorphic ops is sent to the key holder.  With ``pool``
        the zero-encryption comes pregenerated (one mulmod online).
        """
        n_sq = self.public_key.n_squared
        if pool is not None:
            if pool.public_key != self.public_key:
                raise PaillierError("randomness pool bound to a different key")
            zero_enc = pool.rerandomization_unit()
        else:
            r = self.public_key.random_unit(rng)
            zero_enc = cached_pow(r, self.public_key.n, n_sq)
        return PaillierCiphertext(self.public_key,
                                  (self.value * zero_enc) % n_sq)

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, PaillierCiphertext)
                and self.public_key == other.public_key
                and self.value == other.value)

    def __hash__(self) -> int:
        return hash((self.public_key.n, self.value))

    def __repr__(self) -> str:
        return f"PaillierCiphertext(bits={self.public_key.bits})"


def _paillier_l(u: int, n: int) -> int:
    """The ``L(u) = (u - 1) / n`` function; ``u`` must be 1 mod n."""
    quotient, remainder = divmod(u - 1, n)
    if remainder:
        raise PaillierError("L(u) undefined: u is not congruent to 1 mod n")
    return quotient


def _l_quotient(u: int, divisor: int) -> int:
    """``(u - 1) // divisor`` without the divisibility check.

    The CRT branches apply L with exponent ``p - 1``; Fermat guarantees
    divisibility for valid ciphertexts, and invalid ones (multiples of a
    prime factor -- negligible probability, or active tampering) still
    yield a well-defined integer rather than an exception, matching the
    semi-honest model's tamper behaviour tests.
    """
    return (u - 1) // divisor


def _gcd(a: int, b: int) -> int:
    while b:
        a, b = b, a % b
    return a


def _raw_encrypt_constant(self: PaillierPublicKey, constant: int) -> int:
    """``g^constant mod n^2`` -- deterministic encryption with unit randomness."""
    return self._g_pow(constant % self.n)


@lru_cache(maxsize=16)
def _fixed_base_table(g: int, n_squared: int, bits: int):
    """Memoized fixed-base window table for random-``g`` keys.

    Imported lazily: :mod:`repro.crypto.precompute` type-checks against
    this module, so a module-level import would be circular.
    """
    from repro.crypto.precompute import FixedBaseExp
    return FixedBaseExp(g, n_squared, bits)


# Attached here rather than in the dataclass body to keep the frozen
# dataclass declaration free of non-field logic.
PaillierPublicKey.raw_encrypt_constant = _raw_encrypt_constant


def generate_paillier_keypair(bits: int, rng: random.Random,
                              random_g: bool = False) -> PaillierKeyPair:
    """Generate a Paillier keypair following Section 3.7.

    Args:
        bits: size of the modulus ``n`` in bits (each prime is ``bits//2``).
        rng: randomness source (seed it for reproducible tests).
        random_g: if True, draw ``g`` uniformly from ``Z*_{n^2}`` and retry
            until the ``mu`` inverse exists -- the paper's literal
            procedure.  Default uses ``g = n + 1``, which always satisfies
            the divisibility condition and enables the fast-encrypt path.
    """
    if bits < 64:
        raise PaillierError(f"modulus of {bits} bits is too small to be useful")
    while True:
        p, q = generate_distinct_primes(bits // 2, rng)
        n = p * q
        # The paper's explicit check; automatic when p, q have equal size,
        # but we verify rather than assume.
        if _gcd(n, (p - 1) * (q - 1)) == 1:
            break

    lam = lcm(p - 1, q - 1)
    n_sq = n * n

    if random_g:
        while True:
            g = rng.randrange(2, n_sq)
            if _gcd(g, n_sq) != 1:
                continue
            try:
                mu = mod_inverse(_paillier_l(pow(g, lam, n_sq), n), n)
            except (ValueError, PaillierError):
                continue  # n does not divide the order of g; redraw
            break
    else:
        g = n + 1
        mu = mod_inverse(_paillier_l(pow(g, lam, n_sq), n), n)

    # CRT decryption constants (see PaillierPrivateKey docstring).
    hp = mod_inverse(_l_quotient(pow(g, p - 1, p * p), p), p)
    hq = mod_inverse(_l_quotient(pow(g, q - 1, q * q), q), q)

    public = PaillierPublicKey(n=n, g=g)
    private = PaillierPrivateKey(public_key=public, lam=lam, mu=mu, p=p, q=q,
                                 hp=hp, hq=hq)
    return PaillierKeyPair(public_key=public, private_key=private)
