"""Textbook RSA, the public-key system inside YMPP (paper Section 3.8).

Yao's Millionaires' Problem Protocol needs a public-key system where Bob
can evaluate ``Ea(x)`` under Alice's public key and Alice can decrypt
*arbitrary* group elements ``Da(k - j + u)`` -- i.e. a trapdoor
permutation over ``Z_n``, which is exactly raw RSA.  No padding is used
(and none is wanted: the protocol decrypts adversarially shifted
ciphertexts on purpose).

This module is **only** used as the YMPP trapdoor; the DBSCAN protocols'
homomorphic arithmetic runs on Paillier.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.crypto.integer_math import mod_inverse
from repro.crypto.primes import generate_distinct_primes

_PUBLIC_EXPONENT = 65537


class RsaError(ValueError):
    """Raised on invalid key sizes or out-of-range values."""


@dataclass(frozen=True)
class RsaPublicKey:
    n: int
    e: int

    @property
    def bits(self) -> int:
        return self.n.bit_length()

    def encrypt(self, message: int) -> int:
        """Raw RSA: ``c = m^e mod n``."""
        if not 0 <= message < self.n:
            raise RsaError(f"message {message} outside [0, {self.n})")
        return pow(message, self.e, self.n)


@dataclass(frozen=True)
class RsaPrivateKey:
    public_key: RsaPublicKey
    d: int

    def decrypt(self, ciphertext: int) -> int:
        """Raw RSA: ``m = c^d mod n``; defined for every element of Z_n."""
        return pow(ciphertext % self.public_key.n, self.d,
                   self.public_key.n)


@dataclass(frozen=True)
class RsaKeyPair:
    public_key: RsaPublicKey
    private_key: RsaPrivateKey


def generate_rsa_keypair(bits: int, rng: random.Random) -> RsaKeyPair:
    """Generate an RSA keypair with a ``bits``-bit modulus.

    Retries prime selection until ``gcd(e, phi) = 1`` (with e = 65537 a
    redraw is vanishingly rare but must be handled).
    """
    if bits < 64:
        raise RsaError(f"modulus of {bits} bits is too small to be useful")
    while True:
        p, q = generate_distinct_primes(bits // 2, rng)
        phi = (p - 1) * (q - 1)
        try:
            d = mod_inverse(_PUBLIC_EXPONENT, phi)
        except ValueError:
            continue
        n = p * q
        public = RsaPublicKey(n=n, e=_PUBLIC_EXPONENT)
        return RsaKeyPair(public_key=public,
                          private_key=RsaPrivateKey(public_key=public, d=d))
