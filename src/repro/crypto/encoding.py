"""Encodings between real-valued records and integer plaintext spaces.

The paper's protocols operate on integers ("both Alice and Bob transform
their inputs to positive integers", Section 4.1).  Two encoders implement
that transformation:

- :class:`FixedPointEncoder` quantizes real coordinates onto a fixed grid
  (``scale`` steps per unit) so squared distances become exact integers.
- :class:`SignedEncoder` maps signed integers into ``Z_n`` using the
  half-range convention, the standard way to run subtractions through an
  additively homomorphic system.
"""

from __future__ import annotations

from dataclasses import dataclass


class EncodingError(ValueError):
    """Raised when a value cannot be represented in the target space."""


@dataclass(frozen=True)
class FixedPointEncoder:
    """Quantize reals to integers with ``scale`` steps per unit.

    The DBSCAN protocols compare *squared* distances, so a coordinate
    bound ``max_abs`` and dimensionality ``m`` induce the public bound
    ``max_squared_distance`` used to size comparison domains and masks.
    """

    scale: int = 100

    def __post_init__(self):
        if self.scale < 1:
            raise EncodingError(f"scale must be >= 1, got {self.scale}")

    def encode(self, value: float) -> int:
        """Round ``value`` to the nearest grid point."""
        scaled = value * self.scale
        return int(round(scaled))

    def decode(self, encoded: int) -> float:
        return encoded / self.scale

    def encode_point(self, point) -> tuple[int, ...]:
        return tuple(self.encode(v) for v in point)

    def encode_eps_squared(self, eps: float) -> int:
        """Integer threshold for ``dist^2 <= eps^2`` comparisons.

        ``floor((eps * scale)^2)`` -- with grid-aligned inputs the squared
        integer distance equals ``scale^2 * dist^2`` exactly, so flooring
        the threshold preserves the predicate.
        """
        scaled = eps * self.scale
        return int(scaled * scaled + 1e-9)

    def max_squared_distance(self, max_abs: float, dimensions: int) -> int:
        """Public upper bound on any encoded squared distance.

        Coordinates in ``[-max_abs, max_abs]`` differ by at most
        ``2 * max_abs``, so dist^2 <= m * (2 * max_abs * scale)^2.
        """
        if dimensions < 1:
            raise EncodingError(f"dimensions must be >= 1, got {dimensions}")
        per_axis = 2 * self.encode(max_abs)
        return dimensions * per_axis * per_axis


@dataclass(frozen=True)
class SignedEncoder:
    """Half-range mapping between signed integers and ``Z_n``.

    Values in ``[-(n-1)//2, (n-1)//2]`` round-trip exactly; anything
    larger raises, which is how plaintext-space overflow (a silent
    correctness killer in homomorphic pipelines) surfaces as an error.
    """

    modulus: int

    def __post_init__(self):
        if self.modulus < 3:
            raise EncodingError(f"modulus too small: {self.modulus}")

    @property
    def half_range(self) -> int:
        return (self.modulus - 1) // 2

    def encode(self, value: int) -> int:
        if abs(value) > self.half_range:
            raise EncodingError(
                f"value {value} exceeds signed capacity +/-{self.half_range} "
                f"of modulus {self.modulus}"
            )
        return value % self.modulus

    def decode(self, encoded: int) -> int:
        if not 0 <= encoded < self.modulus:
            raise EncodingError(f"encoded value {encoded} outside Z_n")
        if encoded > self.half_range:
            return encoded - self.modulus
        return encoded
