"""Cryptographic substrate built from scratch for the reproduction.

Implements everything Section 3.7/3.8 of the paper depends on:

- :mod:`repro.crypto.integer_math` -- modular arithmetic primitives.
- :mod:`repro.crypto.primes` -- Miller-Rabin prime generation.
- :mod:`repro.crypto.paillier` -- Paillier's additive homomorphic
  cryptosystem (Section 3.7), used by the Multiplication Protocol.
- :mod:`repro.crypto.rsa` -- textbook RSA, the trapdoor permutation
  plugged into Yao's Millionaires' Problem Protocol (Section 3.8).
- :mod:`repro.crypto.encoding` -- signed/fixed-point encodings bridging
  real-valued records and the integer plaintext spaces.
- :mod:`repro.crypto.precompute` -- offline randomness pools and fixed
  bases (the offline/online split).
- :mod:`repro.crypto.engine` -- the parallel modexp engine executing
  pool refills and batch encrypt/decrypt as sharded worker jobs.
"""

from repro.crypto.engine import ModexpEngine, default_engine
from repro.crypto.precompute import RandomnessPool
from repro.crypto.paillier import (
    PaillierCiphertext,
    PaillierKeyPair,
    PaillierPrivateKey,
    PaillierPublicKey,
    generate_paillier_keypair,
)
from repro.crypto.rsa import RsaKeyPair, generate_rsa_keypair
from repro.crypto.encoding import FixedPointEncoder, SignedEncoder

__all__ = [
    "ModexpEngine",
    "default_engine",
    "RandomnessPool",
    "PaillierCiphertext",
    "PaillierKeyPair",
    "PaillierPrivateKey",
    "PaillierPublicKey",
    "generate_paillier_keypair",
    "RsaKeyPair",
    "generate_rsa_keypair",
    "FixedPointEncoder",
    "SignedEncoder",
]
