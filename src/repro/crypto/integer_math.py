"""Modular integer arithmetic primitives.

These are the number-theoretic building blocks for the Paillier
cryptosystem (Section 3.7 of the paper) and textbook RSA (used inside
Yao's Millionaires' Problem Protocol, Section 3.8).  Everything here is
deterministic pure-integer math; randomized routines live in
:mod:`repro.crypto.primes`.
"""

from __future__ import annotations

import math
from functools import lru_cache


@lru_cache(maxsize=1 << 16)
def cached_pow(base: int, exponent: int, modulus: int) -> int:
    """``pow(base, exponent, modulus)`` behind a bounded memo.

    The restartable async pass runtime
    (:mod:`repro.runtime.async_pass`) re-executes a region query from
    its start whenever a missing frame parks it, so the online powmods
    of the replayed prefix repeat with *identical* arguments -- this
    memo turns every repeat into a dict hit instead of a fresh
    exponentiation.  The in-process refill paths share the memo too, so
    a resident daemon prefilling pools for a session whose coin stream
    it has served before pays dict hits, exactly like the replays.
    Only worker *processes* keep plain ``pow`` -- their memory is not
    shared, so a memo there would only burn RAM.  The function is pure,
    so memoization cannot change any result, transcript, or ledger.
    """
    return pow(base, exponent, modulus)


def powmod_cache_report() -> dict[str, int]:
    """Hit/miss/eviction accounting for the :func:`cached_pow` memo.

    ``evictions`` is derived: every miss inserts one entry, so entries
    beyond ``currsize`` were pushed out by the LRU bound.  Feeds the
    daemon's metrics collector and the ``repro stats`` summary.
    """
    info = cached_pow.cache_info()
    return {
        "hits": info.hits,
        "misses": info.misses,
        "size": info.currsize,
        "maxsize": info.maxsize or 0,
        "evictions": max(0, info.misses - info.currsize),
    }


def egcd(a: int, b: int) -> tuple[int, int, int]:
    """Extended Euclidean algorithm.

    Returns ``(g, x, y)`` with ``g = gcd(a, b)`` and ``a*x + b*y == g``.
    Iterative to avoid recursion limits on cryptographic-size integers.
    """
    old_r, r = a, b
    old_x, x = 1, 0
    old_y, y = 0, 1
    while r:
        q = old_r // r
        old_r, r = r, old_r - q * r
        old_x, x = x, old_x - q * x
        old_y, y = y, old_y - q * y
    return old_r, old_x, old_y


def mod_inverse(a: int, modulus: int) -> int:
    """Multiplicative inverse of ``a`` modulo ``modulus``.

    Raises:
        ValueError: if ``a`` is not invertible (``gcd(a, modulus) != 1``)
            or the modulus is not positive.
    """
    if modulus <= 0:
        raise ValueError(f"modulus must be positive, got {modulus}")
    g, x, _ = egcd(a % modulus, modulus)
    if g != 1:
        raise ValueError(f"{a} has no inverse modulo {modulus} (gcd={g})")
    return x % modulus


def lcm(a: int, b: int) -> int:
    """Least common multiple; ``lambda = lcm(p-1, q-1)`` in Paillier keygen."""
    if a == 0 or b == 0:
        return 0
    return abs(a * b) // math.gcd(a, b)


def crt_pair(residue_p: int, p: int, residue_q: int, q: int) -> int:
    """Chinese Remainder Theorem for two coprime moduli.

    Returns the unique ``x`` in ``[0, p*q)`` with ``x = residue_p (mod p)``
    and ``x = residue_q (mod q)``.  Used by the CRT-accelerated Paillier
    decryption path.
    """
    g, inv_p_mod_q, _ = egcd(p, q)
    if g != 1:
        raise ValueError(f"moduli must be coprime, gcd({p}, {q}) = {g}")
    diff = (residue_q - residue_p) % q
    return (residue_p + p * ((diff * inv_p_mod_q) % q)) % (p * q)


def int_bit_length_bytes(value: int) -> int:
    """Number of bytes needed to store ``value`` (minimum one byte).

    The accounting channel uses this to charge protocols for the exact
    serialized size of each transmitted integer.
    """
    if value < 0:
        value = -value
    return max(1, (value.bit_length() + 7) // 8)


def isqrt_exact(value: int) -> int | None:
    """Integer square root if ``value`` is a perfect square, else ``None``."""
    if value < 0:
        return None
    root = math.isqrt(value)
    return root if root * root == value else None


def pow_mod(base: int, exponent: int, modulus: int) -> int:
    """Modular exponentiation supporting negative exponents.

    Negative exponents are resolved through the modular inverse, which the
    Paillier scalar-multiply-by-negative path needs (e.g. homomorphically
    computing ``E(-2 * a_i * b_i)`` in the DGK-style comparison).
    """
    if modulus <= 0:
        raise ValueError(f"modulus must be positive, got {modulus}")
    if exponent < 0:
        return cached_pow(mod_inverse(base, modulus), -exponent, modulus)
    return cached_pow(base, exponent, modulus)
