"""Sealed key halves: public-only key objects for remote parties.

The mirrored choreography (:mod:`repro.runtime.mirror`) executes *both*
parties' steps in each process, but only the frames computed by the
data's owner ever reach the wire -- the remote side's sends are
discarded unserialized.  Until PR 8 that discard was coincidental with
respect to key material: every process derived every party's full
keypair from the manifest ``key_seed``, so a compromised process held
usable private keys it had no business holding.

This module makes the discard *structural*.  A remote party's context
carries a :class:`SealedPaillierPrivateKey` (or
:class:`SealedRsaPrivateKey`): an object with the public half and an
owner tag but **no secret fields at all** -- there is nothing to steal
-- and every decrypt/sign entry point raises
:class:`PublicOnlyKeyError`.  The two sanctioned discard boundaries
(:meth:`repro.crypto.engine.ModexpEngine.decrypt_raw_batch` and
:func:`decrypt_or_discard`) substitute placeholder zeros for sealed
decrypts; everything downstream of those zeros feeds only frames the
mirror discards, which the bit-identical equivalence bar proves on
every run.

Public keys for sealed contexts are captured from the authentic wire
exchange at session start and cross-checked against the manifest's
per-party public-key digests (:func:`paillier_public_digest`), so a
party never trusts a peer key it cannot verify against the run's
trusted setup.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro.crypto.paillier import (
    PaillierKeyPair,
    PaillierPublicKey,
)
from repro.crypto.rsa import RsaKeyPair, RsaPublicKey


class PublicOnlyKeyError(RuntimeError):
    """A decrypt/sign was attempted on a sealed (public-only) key.

    Raised by every secret-consuming method of the sealed key classes.
    Reaching this error means a code path tried to use a remote party's
    private key outside the sanctioned discard boundaries -- always a
    bug in the choreography or a privacy violation, never recoverable.
    """

    def __init__(self, owner: str, operation: str):
        super().__init__(
            f"{operation} attempted on the sealed private key of "
            f"{owner!r}: this process holds only the public half "
            f"(private keys never leave their owner's process)")
        self.owner = owner
        self.operation = operation


@dataclass(frozen=True)
class SealedPaillierPrivateKey:
    """The shape of a Paillier private key with no secrets inside.

    Stands in for a remote party's :class:`PaillierPrivateKey` in the
    mirrored choreography.  It carries only the public key and the
    owning party's name; ``lam``/``mu``/``p``/``q`` do not exist as
    attributes, and every decrypt method raises
    :class:`PublicOnlyKeyError`.  The ``sealed`` flag is what the
    sanctioned discard boundaries test for.
    """

    public_key: PaillierPublicKey
    owner: str
    sealed = True

    def decrypt_raw(self, ciphertext_value: int) -> int:
        raise PublicOnlyKeyError(self.owner, "decrypt_raw")

    def decrypt_raw_standard(self, ciphertext_value: int) -> int:
        raise PublicOnlyKeyError(self.owner, "decrypt_raw_standard")

    def decrypt(self, ciphertext) -> int:
        raise PublicOnlyKeyError(self.owner, "decrypt")

    def decrypt_raw_batch(self, ciphertext_values: list[int]) -> list[int]:
        raise PublicOnlyKeyError(self.owner, "decrypt_raw_batch")

    def decrypt_batch(self, ciphertexts: list) -> list[int]:
        raise PublicOnlyKeyError(self.owner, "decrypt_batch")

    def decrypt_signed(self, ciphertext) -> int:
        raise PublicOnlyKeyError(self.owner, "decrypt_signed")


@dataclass(frozen=True)
class SealedRsaPrivateKey:
    """Public-only stand-in for a remote party's RSA private key."""

    public_key: RsaPublicKey
    owner: str
    sealed = True

    @property
    def d(self) -> int:
        raise PublicOnlyKeyError(self.owner, "private exponent access")

    def decrypt(self, ciphertext: int) -> int:
        raise PublicOnlyKeyError(self.owner, "decrypt")


def is_sealed(private_key) -> bool:
    """True when ``private_key`` is a public-only sealed stand-in."""
    return bool(getattr(private_key, "sealed", False))


def seal_paillier_keypair(public_key: PaillierPublicKey,
                          owner: str) -> PaillierKeyPair:
    """A keypair whose private half is sealed -- usable for encryption
    and homomorphic arithmetic, never for decryption."""
    return PaillierKeyPair(
        public_key=public_key,
        private_key=SealedPaillierPrivateKey(public_key=public_key,
                                             owner=owner))


def seal_rsa_keypair(public_key: RsaPublicKey, owner: str) -> RsaKeyPair:
    return RsaKeyPair(
        public_key=public_key,
        private_key=SealedRsaPrivateKey(public_key=public_key, owner=owner))


def decrypt_or_discard(private_key, ciphertext) -> int:
    """Decrypt, or return a placeholder zero when the key is sealed.

    One of the two sanctioned discard boundaries (the other is the
    engine's ``decrypt_raw_batch``).  A sealed key means the decrypting
    party is remote in this process: the true plaintext exists only in
    the owner's process, and everything computed from the placeholder
    feeds frames the mirror discards.
    """
    if is_sealed(private_key):
        return 0
    return private_key.decrypt(ciphertext)


def paillier_public_digest(public_key: PaillierPublicKey) -> str:
    """Canonical SHA-256 digest of a Paillier public key.

    The manifest pins each party's expected public key with this digest
    (computed by the orchestrator's trusted setup); sessions cross-check
    the wire-captured peer key against it before trusting a ciphertext.
    """
    material = f"paillier|{public_key.n}|{public_key.g}".encode()
    return hashlib.sha256(material).hexdigest()


def rsa_public_digest(public_key: RsaPublicKey) -> str:
    """Canonical SHA-256 digest of an RSA public key."""
    material = f"rsa|{public_key.n}|{public_key.e}".encode()
    return hashlib.sha256(material).hexdigest()
