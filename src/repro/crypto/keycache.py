"""Deterministic, memoized key generation for tests and benchmarks.

Key generation is by far the most expensive crypto operation; tests and
benchmarks that only care about protocol behaviour reuse keys through
this cache.  Keys are derived deterministically from ``(bits, seed)`` so
the cache never changes observable behaviour, only wall-clock time.

Production callers should generate keys directly via
:func:`repro.crypto.paillier.generate_paillier_keypair` with a
``random.Random`` seeded from ``secrets.randbits``.
"""

from __future__ import annotations

import random
from functools import lru_cache

from repro.crypto.paillier import PaillierKeyPair, generate_paillier_keypair
from repro.crypto.rsa import RsaKeyPair, generate_rsa_keypair


@lru_cache(maxsize=64)
def cached_paillier_keypair(bits: int, seed: int) -> PaillierKeyPair:
    """Deterministic Paillier keypair for ``(bits, seed)``."""
    return generate_paillier_keypair(bits, random.Random(("paillier", bits, seed).__repr__()))


@lru_cache(maxsize=64)
def cached_rsa_keypair(bits: int, seed: int) -> RsaKeyPair:
    """Deterministic RSA keypair for ``(bits, seed)``."""
    return generate_rsa_keypair(bits, random.Random(("rsa", bits, seed).__repr__()))
