"""DBSCAN parameter estimation: the sorted k-dist heuristic.

Ester et al. (1996), Section 4.2 -- the substrate paper of this
reproduction -- propose choosing Eps from the *sorted k-dist graph*:
plot every point's distance to its k-th nearest neighbour in descending
order and use the first "valley" (knee); points left of it are noise,
right of it cluster members.  ``MinPts = k + 1`` pairs with the chosen
Eps (the query point itself counts toward MinPts).

This is plaintext tooling: a data owner would run it on their own share
(or the parties agree on parameters out of band); it never touches the
protocols.
"""

from __future__ import annotations

import math

from repro.clustering.neighborhoods import squared_distance


class EstimationError(ValueError):
    """Raised on undersized inputs."""


def k_distance_profile(points: list[tuple[int, ...]], k: int) -> list[float]:
    """Every point's distance to its k-th nearest neighbour, descending.

    Args:
        points: integer-grid points.
        k: neighbour rank (k >= 1; the point itself is excluded).
    """
    if k < 1:
        raise EstimationError(f"k must be >= 1, got {k}")
    if len(points) <= k:
        raise EstimationError(
            f"need more than k={k} points, got {len(points)}")
    distances = []
    for i, point in enumerate(points):
        others = sorted(squared_distance(point, other)
                        for j, other in enumerate(points) if j != i)
        distances.append(math.sqrt(others[k - 1]))
    distances.sort(reverse=True)
    return distances


def knee_index(profile: list[float]) -> int:
    """Index of the knee of a descending profile.

    Uses the standard maximum-distance-to-chord rule: the knee is the
    point of the curve farthest from the straight line joining its
    endpoints.
    """
    if len(profile) < 3:
        return len(profile) // 2
    first = (0.0, profile[0])
    last = (float(len(profile) - 1), profile[-1])
    chord_dx = last[0] - first[0]
    chord_dy = last[1] - first[1]
    chord_length = math.hypot(chord_dx, chord_dy)
    if chord_length == 0:
        return len(profile) // 2
    best_index = 0
    best_distance = -1.0
    for index, value in enumerate(profile):
        # Perpendicular distance from (index, value) to the chord.
        distance = abs(chord_dx * (first[1] - value)
                       - (first[0] - index) * chord_dy) / chord_length
        if distance > best_distance:
            best_distance = distance
            best_index = index
    return best_index


def suggest_eps(points: list[tuple[int, ...]], k: int = 3, *,
                scale: int = 1) -> float:
    """Suggest an Eps (in original units) from the k-dist knee.

    Args:
        points: integer-grid points.
        k: neighbour rank; pair the result with ``min_pts = k + 1``.
        scale: the fixed-point scale the points were quantized with, so
            the suggestion comes back in original units.
    """
    profile = k_distance_profile(points, k)
    return profile[knee_index(profile)] / scale


def suggest_parameters(points: list[tuple[int, ...]], *, k: int = 3,
                       scale: int = 1) -> tuple[float, int]:
    """``(eps, min_pts)`` from the Ester et al. heuristic."""
    return suggest_eps(points, k, scale=scale), k + 1
