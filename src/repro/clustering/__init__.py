"""Plaintext clustering substrate.

The DBSCAN algorithm of Ester et al. (1996) -- the paper's reference
[8] -- implemented exactly (:mod:`repro.clustering.dbscan`), plus the
*union-density per-party* semantics that the horizontal protocol of
Algorithm 3/4 actually computes (:mod:`repro.clustering.union_density`),
and the metrics used to compare clusterings
(:mod:`repro.clustering.metrics`).
"""

from repro.clustering.labels import NOISE, UNCLASSIFIED, ClusterLabels
from repro.clustering.dbscan import dbscan
from repro.clustering.union_density import union_density_dbscan
from repro.clustering.metrics import (
    adjusted_rand_index,
    labelings_equivalent,
    noise_agreement,
    purity,
    rand_index,
)

__all__ = [
    "NOISE",
    "UNCLASSIFIED",
    "ClusterLabels",
    "dbscan",
    "union_density_dbscan",
    "adjusted_rand_index",
    "labelings_equivalent",
    "noise_agreement",
    "purity",
    "rand_index",
]
