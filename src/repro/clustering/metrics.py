"""Clustering comparison metrics, implemented from scratch.

Used by the E5 correctness experiments: exact equivalence for
protocol-vs-reference checks, Rand/ARI/purity for the measured
divergence between the horizontal per-party semantics and centralized
DBSCAN.

Noise handling follows the scikit-learn convention the community
expects: noise points (label -1) are treated as singleton clusters for
pair-counting metrics unless stated otherwise, and
:func:`noise_agreement` reports the noise/non-noise confusion directly.
"""

from __future__ import annotations

from collections import Counter, defaultdict

from repro.clustering.labels import NOISE, canonicalize


def labelings_equivalent(left, right) -> bool:
    """True iff the two labelings are identical up to cluster renaming."""
    if len(left) != len(right):
        return False
    return canonicalize(left) == canonicalize(right)


def _pair_counts(left, right) -> tuple[int, int, int, int]:
    """Pair-counting contingency: (both-same, left-only, right-only, neither)."""
    if len(left) != len(right):
        raise ValueError(f"length mismatch: {len(left)} vs {len(right)}")
    left = _noise_as_singletons(left)
    right = _noise_as_singletons(right)
    n = len(left)
    same_both = same_left = same_right = 0
    for i in range(n):
        for j in range(i + 1, n):
            in_left = left[i] == left[j]
            in_right = right[i] == right[j]
            same_left += in_left
            same_right += in_right
            same_both += in_left and in_right
    total_pairs = n * (n - 1) // 2
    neither = total_pairs - same_left - same_right + same_both
    return same_both, same_left - same_both, same_right - same_both, neither


def rand_index(left, right) -> float:
    """Fraction of point pairs the two clusterings agree on."""
    a, b, c, d = _pair_counts(left, right)
    total = a + b + c + d
    return 1.0 if total == 0 else (a + d) / total


def adjusted_rand_index(left, right) -> float:
    """Hubert-Arabie adjusted Rand index (chance-corrected)."""
    if len(left) != len(right):
        raise ValueError(f"length mismatch: {len(left)} vs {len(right)}")
    left = _noise_as_singletons(left)
    right = _noise_as_singletons(right)
    n = len(left)
    if n == 0:
        return 1.0

    contingency: dict[tuple, int] = defaultdict(int)
    left_sizes: Counter = Counter()
    right_sizes: Counter = Counter()
    for l_label, r_label in zip(left, right):
        contingency[(l_label, r_label)] += 1
        left_sizes[l_label] += 1
        right_sizes[r_label] += 1

    def choose2(x: int) -> int:
        return x * (x - 1) // 2

    sum_cells = sum(choose2(count) for count in contingency.values())
    sum_left = sum(choose2(count) for count in left_sizes.values())
    sum_right = sum(choose2(count) for count in right_sizes.values())
    total_pairs = choose2(n)
    if total_pairs == 0:
        return 1.0
    expected = sum_left * sum_right / total_pairs
    maximum = (sum_left + sum_right) / 2
    if maximum == expected:
        return 1.0
    return (sum_cells - expected) / (maximum - expected)


def purity(predicted, reference) -> float:
    """Mean over predicted clusters of their majority reference label.

    Noise points in ``predicted`` are excluded (they claim no cluster);
    an all-noise prediction scores 1.0 vacuously.
    """
    if len(predicted) != len(reference):
        raise ValueError(f"length mismatch: {len(predicted)} vs {len(reference)}")
    members: dict[int, list[int]] = defaultdict(list)
    for index, label in enumerate(predicted):
        if label != NOISE:
            members[label].append(index)
    clustered = sum(len(indices) for indices in members.values())
    if clustered == 0:
        return 1.0
    agreeing = 0
    for indices in members.values():
        majority = Counter(reference[i] for i in indices).most_common(1)[0][1]
        agreeing += majority
    return agreeing / clustered


def noise_agreement(left, right) -> float:
    """Fraction of points on which the two labelings agree about noise."""
    if len(left) != len(right):
        raise ValueError(f"length mismatch: {len(left)} vs {len(right)}")
    if not left:
        return 1.0
    matches = sum((l == NOISE) == (r == NOISE) for l, r in zip(left, right))
    return matches / len(left)


def _noise_as_singletons(labels) -> list:
    """Map each noise point to a unique label so pairs never co-cluster."""
    result = []
    next_singleton = -2
    for label in labels:
        if label == NOISE:
            result.append(next_singleton)
            next_singleton -= 1
        else:
            result.append(label)
    return result
