"""Centralized DBSCAN -- Ester, Kriegel, Sander, Xu (KDD 1996).

The single-party reference algorithm that the distributed protocols are
measured against, implemented exactly as the original paper (and
Section 3.1 of the reproduced paper) describes: iterate over points,
expand a cluster from every unclassified core point, demote
density-unreachable points to noise.

Operates on integer-grid coordinates with an integer ``eps_squared``
threshold so results are bit-comparable with protocol runs.
"""

from __future__ import annotations

from collections import deque

from repro.clustering.labels import (
    NOISE,
    UNCLASSIFIED,
    ClusterLabels,
    next_cluster_id,
)
from repro.clustering.neighborhoods import BruteForceIndex, make_index


def dbscan(points: list[tuple[int, ...]], eps_squared: int, min_pts: int, *,
           use_grid_index: bool = False) -> ClusterLabels:
    """Cluster ``points``; returns labels (cluster ids, NOISE).

    Args:
        points: integer-grid coordinates.
        eps_squared: neighbourhood radius threshold, compared against
            exact integer squared distances (``dist^2 <= eps_squared``).
        min_pts: minimum neighbourhood size (the query point counts).
        use_grid_index: accelerate region queries with a uniform grid;
            results are identical to the brute-force path.
    """
    if min_pts < 1:
        raise ValueError(f"min_pts must be >= 1, got {min_pts}")
    if eps_squared < 0:
        raise ValueError(f"eps_squared must be >= 0, got {eps_squared}")

    index = make_index(points, eps_squared, use_grid=use_grid_index)
    labels = ClusterLabels(len(points))
    cluster_id = next_cluster_id(NOISE)
    for point_index in range(len(points)):
        if labels.is_unclassified(point_index):
            if _expand_cluster(points, index, labels, point_index,
                               cluster_id, eps_squared, min_pts):
                cluster_id = next_cluster_id(cluster_id)
    return labels


def _expand_cluster(points, index, labels: ClusterLabels, point_index: int,
                    cluster_id: int, eps_squared: int, min_pts: int) -> bool:
    """The original ExpandCluster: returns True if a cluster was found."""
    seeds = index.region_query(points[point_index], eps_squared)
    if len(seeds) < min_pts:
        labels.change_cluster_id(point_index, NOISE)
        return False

    labels.change_cluster_ids(seeds, cluster_id)
    queue = deque(s for s in seeds if s != point_index)
    while queue:
        current = queue.popleft()
        result = index.region_query(points[current], eps_squared)
        if len(result) >= min_pts:
            for neighbor in result:
                if labels[neighbor] in (UNCLASSIFIED, NOISE):
                    if labels[neighbor] == UNCLASSIFIED:
                        queue.append(neighbor)
                    labels.change_cluster_id(neighbor, cluster_id)
    return True


def core_points(points: list[tuple[int, ...]], eps_squared: int,
                min_pts: int) -> list[int]:
    """Indices of all core points (|N_eps| >= min_pts); analysis helper."""
    index = BruteForceIndex(points)
    return [i for i, point in enumerate(points)
            if len(index.region_query(point, eps_squared)) >= min_pts]
