"""Cluster label constants and containers.

DBSCAN's three label states follow the original paper: every point
starts ``UNCLASSIFIED``, may be demoted to ``NOISE``, and is promoted to
a cluster id (``1, 2, 3, ...``) when reached by a cluster expansion.
"""

from __future__ import annotations

from dataclasses import dataclass, field

UNCLASSIFIED = 0
NOISE = -1
_FIRST_CLUSTER_ID = 1


@dataclass
class ClusterLabels:
    """Mutable label assignment for ``size`` points.

    Mirrors the paper's ``SetOfPoints.changeClusterId`` interface so the
    protocol code reads like Algorithm 3/4.
    """

    size: int
    labels: list[int] = field(default_factory=list)

    def __post_init__(self):
        if not self.labels:
            self.labels = [UNCLASSIFIED] * self.size
        if len(self.labels) != self.size:
            raise ValueError(
                f"{len(self.labels)} labels for {self.size} points")

    def __getitem__(self, index: int) -> int:
        return self.labels[index]

    def change_cluster_id(self, index: int, cluster_id: int) -> None:
        self.labels[index] = cluster_id

    def change_cluster_ids(self, indices, cluster_id: int) -> None:
        for index in indices:
            self.labels[index] = cluster_id

    def is_unclassified(self, index: int) -> bool:
        return self.labels[index] == UNCLASSIFIED

    def is_noise(self, index: int) -> bool:
        return self.labels[index] == NOISE

    def cluster_ids(self) -> list[int]:
        """Distinct cluster ids in first-appearance order (noise excluded)."""
        seen: list[int] = []
        for label in self.labels:
            if label not in (UNCLASSIFIED, NOISE) and label not in seen:
                seen.append(label)
        return seen

    def as_tuple(self) -> tuple[int, ...]:
        return tuple(self.labels)


def next_cluster_id(current: int) -> int:
    """The paper's ``nextId``: NOISE seeds the first real cluster id."""
    if current in (NOISE, UNCLASSIFIED):
        return _FIRST_CLUSTER_ID
    return current + 1


def canonicalize(labels) -> tuple[int, ...]:
    """Relabel clusters by order of first appearance.

    Two clusterings are identical up to cluster numbering iff their
    canonical forms are equal; noise and unclassified map to themselves.
    """
    mapping: dict[int, int] = {}
    canonical = []
    next_id = _FIRST_CLUSTER_ID
    for label in labels:
        if label in (NOISE, UNCLASSIFIED):
            canonical.append(label)
            continue
        if label not in mapping:
            mapping[label] = next_id
            next_id += 1
        canonical.append(mapping[label])
    return tuple(canonical)
