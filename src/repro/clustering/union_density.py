"""Union-density per-party DBSCAN -- the plaintext model of Algorithm 3/4.

The horizontal protocol (paper Section 4.2.1) computes, for each party,
a DBSCAN over *that party's own points* in which the density test counts
the other party's points but cluster expansion never passes through
them (the permutation deliberately destroys the linking information
expansion would need -- DESIGN.md Section 2 item 1).

This module implements exactly that semantics *without* cryptography.
The secure horizontal and enhanced protocols are tested to reproduce its
output bit-for-bit, and experiment E5b measures how far it sits from
centralized DBSCAN.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.clustering.labels import (
    NOISE,
    UNCLASSIFIED,
    ClusterLabels,
    next_cluster_id,
)
from repro.clustering.neighborhoods import BruteForceIndex, squared_distance


@dataclass(frozen=True)
class UnionDensityResult:
    """Output of one party's pass.

    Attributes:
        labels: cluster labels over the party's own points.
        own_neighbor_counts: |N_eps(p) ∩ own| for each own point p
            (includes p itself).
        other_neighbor_counts: |N_eps(p) ∩ other| for each own point p --
            the quantity the base protocol reveals and the enhanced
            protocol hides.
        core_flags: whether each own point passed the union density test.
    """

    labels: ClusterLabels
    own_neighbor_counts: tuple[int, ...]
    other_neighbor_counts: tuple[int, ...]
    core_flags: tuple[bool, ...]


def union_density_dbscan(own_points: list[tuple[int, ...]],
                         other_points: list[tuple[int, ...]],
                         eps_squared: int,
                         min_pts: int) -> UnionDensityResult:
    """One party's Algorithm 3/4 pass in the clear.

    Args:
        own_points: the driving party's points (expansion universe).
        other_points: the peer's points (density support only).
        eps_squared: integer squared radius threshold.
        min_pts: density threshold over the union neighbourhood.
    """
    if min_pts < 1:
        raise ValueError(f"min_pts must be >= 1, got {min_pts}")
    index = BruteForceIndex(own_points)
    own_counts = []
    other_counts = []
    core_flags = []
    for point in own_points:
        own_neighbors = index.region_query(point, eps_squared)
        other_count = sum(
            1 for other in other_points
            if squared_distance(point, other) <= eps_squared)
        own_counts.append(len(own_neighbors))
        other_counts.append(other_count)
        core_flags.append(len(own_neighbors) + other_count >= min_pts)

    labels = ClusterLabels(len(own_points))
    cluster_id = next_cluster_id(NOISE)
    for point_index in range(len(own_points)):
        if labels.is_unclassified(point_index):
            if _expand(index, labels, point_index, core_flags, eps_squared):
                cluster_id = next_cluster_id(cluster_id)
    return UnionDensityResult(
        labels=labels,
        own_neighbor_counts=tuple(own_counts),
        other_neighbor_counts=tuple(other_counts),
        core_flags=tuple(core_flags),
    )


def _expand(index: BruteForceIndex, labels: ClusterLabels, point_index: int,
            core_flags: list[bool], eps_squared: int) -> bool:
    """Algorithm 4 with the union density test pre-computed as core_flags.

    Note the cluster id is assigned by the caller's loop; mirroring the
    paper, the id in use equals the id the caller will allocate, so we
    re-derive it from the labels state.
    """
    cluster_id = next_cluster_id(_max_assigned(labels))
    if not core_flags[point_index]:
        labels.change_cluster_id(point_index, NOISE)
        return False

    seeds = index.region_query(index.points[point_index], eps_squared)
    labels.change_cluster_ids(seeds, cluster_id)
    queue = deque(s for s in seeds if s != point_index)
    while queue:
        current = queue.popleft()
        if core_flags[current]:
            for neighbor in index.region_query(index.points[current],
                                               eps_squared):
                if labels[neighbor] in (UNCLASSIFIED, NOISE):
                    if labels[neighbor] == UNCLASSIFIED:
                        queue.append(neighbor)
                    labels.change_cluster_id(neighbor, cluster_id)
    return True


def _max_assigned(labels: ClusterLabels) -> int:
    assigned = [label for label in labels.labels
                if label not in (UNCLASSIFIED, NOISE)]
    return max(assigned) if assigned else NOISE
