"""Region queries (Eps-neighbourhoods) over integer-grid points.

All clustering layers operate on fixed-point integer coordinates (see
:mod:`repro.data.quantize`), so distance comparisons are exact integer
arithmetic -- the same arithmetic the secure protocols perform -- and a
plaintext run can be compared bit-for-bit against a protocol run.

Two implementations of the same interface:

- :class:`BruteForceIndex` -- O(n) per query, the reference.
- :class:`GridIndex` -- uniform-grid acceleration with identical results
  (property-tested), used by the larger benchmark workloads.
"""

from __future__ import annotations

from collections import defaultdict


def squared_distance(a: tuple[int, ...], b: tuple[int, ...]) -> int:
    """Exact integer squared Euclidean distance."""
    if len(a) != len(b):
        raise ValueError(f"dimension mismatch: {len(a)} vs {len(b)}")
    return sum((x - y) * (x - y) for x, y in zip(a, b))


class BruteForceIndex:
    """Linear-scan Eps-neighbourhood queries."""

    def __init__(self, points: list[tuple[int, ...]]):
        self.points = points

    def region_query(self, center: tuple[int, ...],
                     eps_squared: int) -> list[int]:
        """Indices of all points within distance^2 <= eps_squared.

        Matches the paper's ``regionQuery``: the query point itself is
        included when it belongs to the indexed set.
        """
        return [index for index, point in enumerate(self.points)
                if squared_distance(center, point) <= eps_squared]

    def __len__(self) -> int:
        return len(self.points)


class GridIndex:
    """Uniform-grid index; cell edge = eps so 3^d cells cover a query.

    Only correct for the ``eps_squared`` it was built for, which is the
    DBSCAN use case (one fixed radius for the whole run).
    """

    def __init__(self, points: list[tuple[int, ...]], eps_squared: int):
        if eps_squared < 0:
            raise ValueError(f"eps_squared must be >= 0, got {eps_squared}")
        self.points = points
        self.eps_squared = eps_squared
        # Cell edge of ceil(sqrt(eps_squared)) guarantees neighbours lie
        # in adjacent cells; +1 avoids a zero edge for eps < 1 grid step.
        self._edge = max(1, int(eps_squared ** 0.5) + 1)
        self._cells: dict[tuple[int, ...], list[int]] = defaultdict(list)
        for index, point in enumerate(points):
            self._cells[self._cell_of(point)].append(index)

    def _cell_of(self, point: tuple[int, ...]) -> tuple[int, ...]:
        return tuple(coordinate // self._edge for coordinate in point)

    def region_query(self, center: tuple[int, ...],
                     eps_squared: int) -> list[int]:
        if eps_squared != self.eps_squared:
            raise ValueError(
                f"index built for eps_squared={self.eps_squared}, "
                f"queried with {eps_squared}"
            )
        cell = self._cell_of(center)
        dimensions = len(cell)
        hits = []
        for offset in _neighbor_offsets(dimensions):
            neighbor_cell = tuple(c + o for c, o in zip(cell, offset))
            for index in self._cells.get(neighbor_cell, ()):
                if squared_distance(center, self.points[index]) <= eps_squared:
                    hits.append(index)
        return sorted(hits)

    def __len__(self) -> int:
        return len(self.points)


def make_index(points: list[tuple[int, ...]], eps_squared: int, *,
               use_grid: bool = False) -> "BruteForceIndex | GridIndex":
    """Index factory shared by the clustering and protocol layers.

    Both implementations return identical, ascending hit lists for the
    same query (property-tested), so swapping them never changes
    clustering output -- only local query time.
    """
    return (GridIndex(points, eps_squared) if use_grid
            else BruteForceIndex(points))


def _neighbor_offsets(dimensions: int) -> list[tuple[int, ...]]:
    """All offsets in {-1, 0, 1}^d."""
    offsets: list[tuple[int, ...]] = [()]
    for _ in range(dimensions):
        offsets = [prefix + (delta,) for prefix in offsets
                   for delta in (-1, 0, 1)]
    return offsets
