"""repro -- Privacy Preserving Distributed DBSCAN Clustering.

A from-scratch reproduction of Liu, Xiong, Luo, Huang, "Privacy
Preserving Distributed DBSCAN Clustering" (EDBT/ICDT Workshops 2012;
extended in Transactions on Data Privacy 6, 2013).

Quickstart::

    import random
    from repro import ProtocolConfig, cluster_partitioned
    from repro.data import partition_horizontal, Dataset, gaussian_blobs

    points = gaussian_blobs(random.Random(0),
                            centers=[(0, 0), (5, 5)], points_per_blob=12)
    partition = partition_horizontal(Dataset.from_points(points), 12)
    run = cluster_partitioned(partition,
                              ProtocolConfig(eps=1.0, min_pts=4))
    print(run.alice_labels, run.bob_labels)

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record.
"""

from repro.core.api import ClusteringRun, cluster_partitioned
from repro.core.config import ProtocolConfig
from repro.smc.session import SmcConfig

__version__ = "1.0.0"

__all__ = [
    "ClusteringRun",
    "cluster_partitioned",
    "ProtocolConfig",
    "SmcConfig",
    "__version__",
]
