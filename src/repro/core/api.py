"""Public one-call API for privacy preserving distributed DBSCAN.

:func:`cluster_partitioned` dispatches on the partition type (Figures
2-4) and protocol variant, returning a uniform :class:`ClusteringRun`.
This is the entry point the examples and most tests use; the per-variant
``run_*`` functions remain available for callers that need the typed
results.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.core.arbitrary import run_arbitrary_dbscan
from repro.core.config import ProtocolConfig
from repro.core.enhanced import run_enhanced_horizontal_dbscan
from repro.core.horizontal import run_horizontal_dbscan
from repro.core.leakage import LeakageLedger
from repro.core.vertical import run_vertical_dbscan
from repro.data.partitioning import (
    ArbitraryPartition,
    HorizontalPartition,
    VerticalPartition,
)


class ApiError(ValueError):
    """Raised for unsupported partition/variant combinations."""


@dataclass(frozen=True)
class ClusteringRun:
    """Uniform result of a distributed clustering run.

    Attributes:
        variant: which protocol ran (``horizontal``, ``enhanced``,
            ``vertical``, ``arbitrary``).
        alice_labels: Alice's cluster numbers.  For horizontal variants
            these cover her own points; for vertical/arbitrary they are
            the joint labels (identical to ``bob_labels``).
        bob_labels: Bob's cluster numbers, symmetrically.
        ledger: disclosure accounting.
        stats: communication snapshot (bytes/messages, per phase).
        comparisons: secure comparison invocations.
        elapsed_seconds: wall-clock protocol time.
    """

    variant: str
    alice_labels: tuple[int, ...]
    bob_labels: tuple[int, ...]
    ledger: LeakageLedger
    stats: dict
    comparisons: int
    elapsed_seconds: float


def cluster_partitioned(partition, config: ProtocolConfig, *,
                        enhanced: bool = False,
                        session=None) -> ClusteringRun:
    """Cluster a partitioned dataset with the matching paper protocol.

    Args:
        partition: a :class:`HorizontalPartition`,
            :class:`VerticalPartition`, or :class:`ArbitraryPartition`.
        config: protocol parameters (eps, min_pts, crypto settings).
        enhanced: for horizontal partitions, run the Section 5 protocol
            instead of Algorithms 3 + 4.  Invalid for other partitions.
        session: a pre-built :class:`~repro.smc.session.SmcSession`, so
            callers can run the offline phase (``precompute_pools``) and
            inspect ``pool_report()`` around the run.  Supported by the
            plain horizontal protocol only.
    """
    if session is not None and (enhanced
                                or not isinstance(partition,
                                                  HorizontalPartition)):
        raise ApiError("session injection is supported for the plain "
                       "horizontal protocol only")
    started = time.perf_counter()
    if isinstance(partition, HorizontalPartition):
        if enhanced:
            result = run_enhanced_horizontal_dbscan(partition, config)
            variant = "enhanced"
        else:
            result = run_horizontal_dbscan(partition, config,
                                           session=session)
            variant = "horizontal"
        alice_labels = result.alice_labels
        bob_labels = result.bob_labels
    elif isinstance(partition, VerticalPartition):
        if enhanced:
            raise ApiError("the enhanced protocol is defined for "
                           "horizontally partitioned data only (Section 5)")
        result = run_vertical_dbscan(partition, config)
        variant = "vertical"
        alice_labels = bob_labels = result.labels
    elif isinstance(partition, ArbitraryPartition):
        if enhanced:
            raise ApiError("the enhanced protocol is defined for "
                           "horizontally partitioned data only (Section 5)")
        result = run_arbitrary_dbscan(partition, config)
        variant = "arbitrary"
        alice_labels = bob_labels = result.labels
    else:
        raise ApiError(f"unsupported partition type "
                       f"{type(partition).__name__}")

    return ClusteringRun(
        variant=variant,
        alice_labels=alice_labels,
        bob_labels=bob_labels,
        ledger=result.ledger,
        stats=result.stats,
        comparisons=result.comparisons,
        elapsed_seconds=time.perf_counter() - started,
    )
