"""Run configuration for the distributed DBSCAN protocols."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.crypto.encoding import FixedPointEncoder
from repro.smc.session import SmcConfig


class ConfigError(ValueError):
    """Raised for inconsistent protocol parameters."""


@dataclass(frozen=True)
class ProtocolConfig:
    """Everything a distributed DBSCAN run needs beyond the data.

    Attributes:
        eps: DBSCAN radius, in original (real) coordinate units.
        min_pts: DBSCAN density threshold (query point included).
        scale: fixed-point steps per coordinate unit; data must already be
            quantized with the same scale (see repro.data.quantize).
        smc: cryptographic-layer configuration.
        selection: Section 5 k-th statistic algorithm, ``"scan"`` or
            ``"quickselect"``.
        blind_cross_sum: when True, the HDP masks sum to a random value
            known to the querying party (who compensates in the final
            comparison) instead of the paper's zero -- hides the exact
            dot product from the non-querying party.  Default False =
            paper-faithful.  See DESIGN.md and experiment E7.
        query_constant_blinding: only meaningful with
            ``blind_cross_sum``: draw **one** random offset per region
            query instead of one per peer point.  The comparison
            thresholds of the query are then constant again, so the
            amortized DGK batch (``batched_comparisons``) keeps its
            one-bit-encryption-per-query shape instead of degrading to
            per-point runs.  The price is a *relative* disclosure: the
            non-querying party now learns the differences between the
            query's cross dot products (each shifted by the same
            unknown offset), recorded as ``DOT_DIFFERENCE`` in the
            ledger.  Off by default = PR-3 semantics (per-point offsets,
            no relative leakage, no amortization in blind mode).  See
            DESIGN.md, "Query-constant blinding".
        cache_peer_ciphertexts: when True, the horizontal protocols
            (two-party and k-party) reuse each peer point's encrypted
            coordinates across queries -- cheaper, but the stable point
            ids on the wire make hits linkable (the Figure 1 vector;
            ledger records it).  Off by default; experiment E12
            quantifies the trade.
        batched_region_queries: when True (default), the horizontal
            protocols -- two-party passes and every per-peer count of
            the k-party mesh -- run each secure region query as one
            batched HDP (querier point encrypted once, one cross-term
            round-trip for all peer points) instead of one HDP per peer
            point.  Bits, labels, and ledger disclosures are identical
            (property-tested); only wall-clock and message counts
            change.  Off reproduces the seed-era per-point loops for
            ablations.
        batched_comparisons: when True (default), the threshold
            comparisons inside each batched region query run as one
            amortized batch through the comparison backend -- the
            bitwise backend then encrypts the querier's DGK threshold
            bits once per query instead of once per peer point, and all
            witness batches travel in one round-trip.  Predicate bits,
            comparison counts, and ledger disclosures are identical
            (property-tested).  Off reproduces the per-point comparison
            loop for ablations; it only has an effect when
            ``batched_region_queries`` is on (per-point region queries
            already compare point by point).
        use_grid_index: accelerate the *local plaintext* region queries
            of the driving party with a uniform grid index (identical
            hit lists to the brute-force scan, property-tested; no
            change to anything that crosses the wire).  On by default.
        concurrent_peers: schedule the independent per-peer region
            queries of each k-party driver step on a thread pool (one
            pairwise session per worker) instead of visiting peers
            sequentially.  Labels, per-pair transcripts, the leakage
            ledger, and comparison counts are bit-identical to the
            sequential pass (deterministic merge order,
            property-tested); only wall-clock changes -- with a
            simulated-network transport the round-trips to different
            peers overlap.  Off by default.
        peer_workers: thread-pool width for ``concurrent_peers``;
            ``None`` sizes the pool to the peer count of each pass.
        alice_seed / bob_seed: per-party RNG seeds; None = nondeterministic.
    """

    eps: float
    min_pts: int
    scale: int = 100
    smc: SmcConfig = field(default_factory=SmcConfig)
    selection: str = "scan"
    blind_cross_sum: bool = False
    query_constant_blinding: bool = False
    cache_peer_ciphertexts: bool = False
    batched_region_queries: bool = True
    batched_comparisons: bool = True
    use_grid_index: bool = True
    concurrent_peers: bool = False
    peer_workers: int | None = None
    alice_seed: int | None = None
    bob_seed: int | None = None

    def __post_init__(self):
        if self.eps <= 0:
            raise ConfigError(f"eps must be positive, got {self.eps}")
        if self.min_pts < 1:
            raise ConfigError(f"min_pts must be >= 1, got {self.min_pts}")
        if self.selection not in ("scan", "quickselect"):
            raise ConfigError(f"unknown selection method {self.selection!r}")
        if self.peer_workers is not None and self.peer_workers < 1:
            raise ConfigError(
                f"peer_workers must be >= 1, got {self.peer_workers}")
        if self.query_constant_blinding and not self.blind_cross_sum:
            raise ConfigError(
                "query_constant_blinding refines blind_cross_sum; "
                "enable blind_cross_sum too")

    @property
    def eps_squared(self) -> int:
        """Integer squared-radius threshold on the fixed-point grid."""
        return FixedPointEncoder(self.scale).encode_eps_squared(self.eps)
