"""The paper's primary contribution: privacy preserving distributed DBSCAN.

- :mod:`repro.core.config` -- run configuration.
- :mod:`repro.core.distance` -- the HDP / VDP / ADP distance protocols
  (Sections 4.2, 4.3, 4.4).
- :mod:`repro.core.horizontal` -- Algorithms 3 + 4.
- :mod:`repro.core.vertical` -- Algorithms 5 + 6.
- :mod:`repro.core.arbitrary` -- Section 4.4 composition.
- :mod:`repro.core.enhanced` -- Section 5, Algorithms 7 + 8.
- :mod:`repro.core.leakage` -- machine-checkable disclosure accounting.
- :mod:`repro.core.simulators` -- the Definition 5 simulation harness.
- :mod:`repro.core.api` -- the one-call public entry point.
"""

from repro.core.config import ProtocolConfig
from repro.core.api import cluster_partitioned, ClusteringRun
from repro.core.horizontal import run_horizontal_dbscan
from repro.core.vertical import run_vertical_dbscan
from repro.core.arbitrary import run_arbitrary_dbscan
from repro.core.enhanced import run_enhanced_horizontal_dbscan

__all__ = [
    "ProtocolConfig",
    "cluster_partitioned",
    "ClusteringRun",
    "run_horizontal_dbscan",
    "run_vertical_dbscan",
    "run_arbitrary_dbscan",
    "run_enhanced_horizontal_dbscan",
]
