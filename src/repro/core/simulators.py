"""The Definition 5 simulation harness (Lemmas 7 and 8, empirically).

A protocol is private in the semi-honest model if each party's view can
be *simulated* from its own input and output alone.  The paper proves
this for the Multiplication Protocol (Lemma 7) and Protocol HDP
(Lemma 8) by exhibiting simulators; this module implements those
simulators and an empirical indistinguishability check: run the real
protocol many times, run the simulator many times, and compare the
resulting view distributions with a two-sample Kolmogorov-Smirnov test.

A statistical test cannot prove *computational* indistinguishability --
it checks the necessary condition that no gross statistical artifact
separates real views from simulated ones (and it readily exposes broken
maskings: e.g. masks that fail to cover the value range fail these tests
immediately).  Experiment E11 reports the KS statistics.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.crypto.paillier import PaillierKeyPair
from repro.net.channel import Channel
from repro.net.party import make_party_pair
from repro.smc.session import SmcConfig, SmcSession


@dataclass(frozen=True)
class KsReport:
    """Two-sample KS comparison of real vs simulated view samples."""

    statistic: float
    p_value: float
    samples: int

    def indistinguishable(self, alpha: float = 0.01) -> bool:
        """True when the test does NOT reject equality at level alpha."""
        return self.p_value >= alpha


def ks_two_sample(real: list[float], simulated: list[float]) -> KsReport:
    """Two-sample KS test, implemented directly (no scipy dependency).

    Exact enough for the sample sizes used here; p-value via the
    asymptotic Kolmogorov distribution.
    """
    if not real or not simulated:
        raise ValueError("both samples must be non-empty")
    n, m = len(real), len(simulated)
    pooled = sorted(set(real) | set(simulated))
    real_sorted = sorted(real)
    sim_sorted = sorted(simulated)
    statistic = 0.0
    for value in pooled:
        cdf_real = _cdf(real_sorted, value)
        cdf_sim = _cdf(sim_sorted, value)
        statistic = max(statistic, abs(cdf_real - cdf_sim))
    effective = (n * m / (n + m)) ** 0.5
    p_value = _kolmogorov_sf((effective + 0.12 + 0.11 / effective) * statistic)
    return KsReport(statistic=statistic, p_value=p_value,
                    samples=min(n, m))


def _cdf(sorted_values: list[float], value: float) -> float:
    import bisect
    return bisect.bisect_right(sorted_values, value) / len(sorted_values)


def _kolmogorov_sf(t: float) -> float:
    """Survival function of the Kolmogorov distribution (series form)."""
    if t <= 0:
        return 1.0
    total = 0.0
    for k in range(1, 101):
        term = (-1) ** (k - 1) * pow(2.718281828459045, -2.0 * k * k * t * t)
        total += term
        if abs(term) < 1e-12:
            break
    return max(0.0, min(1.0, 2.0 * total))


# ---------------------------------------------------------------------------
# Lemma 7: Multiplication Protocol views.
# ---------------------------------------------------------------------------

def real_masker_view_samples(trials: int, x: int, y: int,
                             config: SmcConfig,
                             seed: int = 0) -> list[float]:
    """The masker's view in real runs: the ciphertext ``E(x)`` it receives.

    Values are normalized to [0, 1) (divided by n^2) so KS operates on
    comparable scalars.
    """
    samples = []
    for trial in range(trials):
        channel = Channel()
        alice, bob = make_party_pair(channel, seed + trial, seed + trial + 1)
        session = SmcSession(alice, bob, config)
        mask = bob.rng.randrange(1 << 16)
        session.multiplication(alice, x, bob, y, mask)
        n_squared = session.paillier_keys(alice.name).public_key.n_squared
        for entry in channel.transcript.with_label("mult/encrypted_x"):
            samples.append(entry.value / n_squared)
    return samples


def simulated_masker_view_samples(trials: int, keypair: PaillierKeyPair,
                                  rng: random.Random) -> list[float]:
    """Lemma 7's simulator for the masker: a uniform random group element.

    "Bob can simulate ... the encrypted value ... simply by generating a
    random [number] from an uniform distribution."
    """
    n_squared = keypair.public_key.n_squared
    samples = []
    for _ in range(trials):
        while True:
            candidate = rng.randrange(1, n_squared)
            if candidate % keypair.public_key.n != 0:
                break
        samples.append(candidate / n_squared)
    return samples


def real_receiver_output_samples(trials: int, x: int, y: int,
                                 mask_bound: int, config: SmcConfig,
                                 seed: int = 0) -> list[float]:
    """The receiver's protocol output ``u = x*y + v`` across real runs."""
    samples = []
    for trial in range(trials):
        channel = Channel()
        alice, bob = make_party_pair(channel, seed + trial, seed + 7 * trial + 3)
        session = SmcSession(alice, bob, config)
        mask = bob.rng.randrange(mask_bound)
        u = session.multiplication(alice, x, bob, y, mask)
        samples.append(u / (abs(x * y) + mask_bound))
    return samples


def simulated_receiver_output_samples(trials: int, x: int, y_bound: int,
                                      mask_bound: int,
                                      rng: random.Random) -> list[float]:
    """Lemma 7's simulator for the receiver: ``x*y' + v'`` with random
    ``y'``, ``v'`` -- the simulated output distribution."""
    samples = []
    for _ in range(trials):
        y_prime = rng.randrange(-y_bound, y_bound + 1)
        v_prime = rng.randrange(mask_bound)
        samples.append((x * y_prime + v_prime) / (abs(x * y_bound) + mask_bound))
    return samples


# ---------------------------------------------------------------------------
# Lemma 8: Protocol HDP views (the peer's masked cross terms).
# ---------------------------------------------------------------------------

def real_hdp_term_samples(trials: int, querier_point: tuple[int, ...],
                          peer_point: tuple[int, ...], value_bound: int,
                          config: SmcConfig,
                          seed: int = 0) -> list[float]:
    """The peer's received masked cross terms ``d_x,t * d_y,t + r_t``.

    Samples all but the last coordinate's term (the last mask is the
    balancing term ``-sum r_t``, whose distribution is a sum, not a
    uniform draw -- Lemma 8's simulator covers the independent draws).
    """
    mask_bound = config.mask_bound(value_bound)
    samples = []
    for trial in range(trials):
        channel = Channel()
        alice, bob = make_party_pair(channel, seed + trial, seed + trial + 11)
        session = SmcSession(alice, bob, config)
        masks = [alice.rng.randrange(-mask_bound, mask_bound + 1)
                 for _ in range(len(querier_point) - 1)]
        masks.append(-sum(masks))
        received = session.masked_dot_terms(
            bob, list(peer_point), alice, list(querier_point), masks)
        samples.extend(term / mask_bound for term in received[:-1])
    return samples


def simulated_hdp_term_samples(trials: int, dimensions: int,
                               value_bound: int, config: SmcConfig,
                               rng: random.Random) -> list[float]:
    """Lemma 8's simulator: "simulate r'_1..r'_m by generating m random
    numbers from a uniform random distribution"."""
    mask_bound = config.mask_bound(value_bound)
    samples = []
    for _ in range(trials):
        for _ in range(dimensions - 1):
            samples.append(rng.randrange(-mask_bound, mask_bound + 1)
                           / mask_bound)
    return samples
