"""Result persistence: serialize clustering runs to plain JSON.

A downstream pipeline wants to store what a protocol run produced and
disclosed; :func:`run_to_dict` / :func:`run_from_dict` round-trip the
:class:`~repro.core.api.ClusteringRun` through JSON-compatible
structures (the ledger serializes event-by-event).
"""

from __future__ import annotations

import json

from repro.core.api import ClusteringRun
from repro.core.leakage import Disclosure, LeakageEvent, LeakageLedger


class ResultSerializationError(ValueError):
    """Raised on malformed stored runs."""


def run_to_dict(run: ClusteringRun) -> dict:
    """JSON-compatible representation of a run."""
    return {
        "variant": run.variant,
        "alice_labels": list(run.alice_labels),
        "bob_labels": list(run.bob_labels),
        "stats": run.stats,
        "comparisons": run.comparisons,
        "elapsed_seconds": run.elapsed_seconds,
        "ledger": [
            {
                "protocol": event.protocol,
                "learner": event.learner,
                "disclosure": event.disclosure.value,
                "detail": event.detail,
            }
            for event in run.ledger.events
        ],
    }


def run_from_dict(data: dict) -> ClusteringRun:
    """Inverse of :func:`run_to_dict`."""
    try:
        ledger = LeakageLedger(events=[
            LeakageEvent(
                protocol=event["protocol"],
                learner=event["learner"],
                disclosure=Disclosure(event["disclosure"]),
                detail=event.get("detail", ""),
            )
            for event in data["ledger"]
        ])
        return ClusteringRun(
            variant=data["variant"],
            alice_labels=tuple(data["alice_labels"]),
            bob_labels=tuple(data["bob_labels"]),
            ledger=ledger,
            stats=data["stats"],
            comparisons=data["comparisons"],
            elapsed_seconds=data["elapsed_seconds"],
        )
    except (KeyError, ValueError, TypeError) as exc:
        raise ResultSerializationError(
            f"malformed stored run: {exc}") from exc


def run_to_json(run: ClusteringRun, *, indent: int | None = None) -> str:
    return json.dumps(run_to_dict(run), indent=indent)


def run_from_json(payload: str) -> ClusteringRun:
    try:
        data = json.loads(payload)
    except json.JSONDecodeError as exc:
        raise ResultSerializationError(f"invalid JSON: {exc}") from exc
    return run_from_dict(data)
