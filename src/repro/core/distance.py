"""The paper's distance protocols: HDP (4.2), VDP (4.3), ADP (4.4).

All three decide ``dist(d_x, d_y)^2 <= Eps^2`` for a pair of records
without either party seeing the other's attribute values; they differ in
who holds which pieces of the squared distance:

- **HDP** (horizontal): the querying party holds one whole record, the
  peer the other.  The peer obtains the masked cross terms through the
  Multiplication Protocol; the final comparison splits the distance as
  ``||d_x||^2`` (querier) + ``||d_y||^2 - 2<d_x, d_y>`` (peer).
- **VDP** (vertical): each party locally sums its own attributes'
  squared differences; one secure comparison finishes the job.
- **ADP** (arbitrary): attribute-by-attribute composition of the two.

Every function takes a ``value_bound`` -- the public upper bound on any
squared distance -- from which mask sizes and comparison intervals are
derived.  Results are directional: ``reveal_to`` states who may learn
the predicate (Algorithm 4 steps 3/13 give it to the querier only).
"""

from __future__ import annotations

from repro.core.leakage import Disclosure, LeakageLedger
from repro.net.party import Party
from repro.smc.session import SmcSession


class DistanceProtocolError(ValueError):
    """Raised on dimension mismatches."""


def _comparison_interval(value_bound: int, eps_squared: int,
                         mask_spread: int = 0) -> tuple[int, int]:
    """A public interval containing every side-value the protocols compare.

    Side values are sums/differences of squared norms, dot products, the
    threshold, and (when blinding) a mask, so +/- the sum of their bounds
    is always sufficient.
    """
    spread = 3 * value_bound + eps_squared + mask_spread + 1
    return -spread, spread


def hdp_within_eps(session: SmcSession, querier: Party,
                   querier_point: tuple[int, ...], peer: Party,
                   peer_point: tuple[int, ...], eps_squared: int,
                   value_bound: int, *, ledger: LeakageLedger | None = None,
                   blind_cross_sum: bool = False,
                   label: str = "hdp") -> bool:
    """Protocol HDP: querier learns whether the peer's point is within Eps.

    Faithful to Section 4.2: the querier draws per-attribute masks
    ``r_1..r_m`` summing to zero, the Multiplication Protocol hands the
    peer each ``d_x,t * d_y,t + r_t``, and YMPP (or the configured
    backend) compares the two halves of the squared distance.

    With ``blind_cross_sum=True`` the masks sum to a random offset the
    querier compensates for in the comparison, hiding the exact dot
    product from the peer (see DESIGN.md; the ledger records the
    difference).
    """
    if len(querier_point) != len(peer_point):
        raise DistanceProtocolError(
            f"dimension mismatch: {len(querier_point)} vs {len(peer_point)}")
    dimensions = len(querier_point)
    mask_bound = session.config.mask_bound(value_bound)

    # Querier-side masks r_1..r_m.
    masks = [querier.rng.randrange(-mask_bound, mask_bound + 1)
             for _ in range(dimensions - 1)]
    if blind_cross_sum:
        offset = querier.rng.randrange(mask_bound + 1)
    else:
        offset = 0  # the paper's "r_1 + ... + r_m = 0"
    masks.append(offset - sum(masks))

    # Multiplication Protocol batch: the peer receives d_x,t*d_y,t + r_t.
    received = session.masked_dot_terms(
        peer, list(peer_point), querier, list(querier_point), masks,
        label=f"{label}/cross_terms")
    cross_sum = sum(received)  # = <d_x, d_y> + offset

    if ledger is not None and not blind_cross_sum:
        ledger.record(label, peer.name, Disclosure.DOT_PRODUCT,
                      detail="zero-sum masks expose the exact cross dot product")

    # The peer's side absorbed -2*offset through the masked cross terms,
    # so dist^2 = querier_side + peer_side + 2*offset and the predicate
    # becomes: peer_side <= eps^2 - querier_side - 2*offset.
    querier_side = sum(c * c for c in querier_point)
    peer_side = sum(c * c for c in peer_point) - 2 * cross_sum
    threshold = eps_squared - querier_side - 2 * offset

    lo, hi = _comparison_interval(value_bound, eps_squared,
                                  mask_spread=2 * (mask_bound + 1))
    outcome = session.compare_leq(
        peer, peer_side, querier, threshold,
        lo=lo, hi=hi, reveal_to="b", label=f"{label}/threshold")
    if ledger is not None:
        ledger.record(label, querier.name, Disclosure.NEIGHBOR_BIT)
    return outcome.result


class PeerCipherCache:
    """Cache of a peer's encrypted coordinates, keyed by stable point id.

    The optimization behind :func:`hdp_within_eps_cached`: a peer point's
    Paillier-encrypted coordinates depend only on the point and the key,
    so they can be transmitted once per run instead of once per query.
    The price is a *stable identifier* on the wire -- the querier can now
    link hits on the same peer point across queries, which is precisely
    the disclosure that re-enables the Figure 1 intersection attack.
    Experiment E12 measures both sides of the trade.
    """

    def __init__(self):
        self.ciphers: dict[int, list[int]] = {}

    def __contains__(self, point_id: int) -> bool:
        return point_id in self.ciphers

    def store(self, point_id: int, cipher_values: list[int]) -> None:
        self.ciphers[point_id] = list(cipher_values)

    def get(self, point_id: int) -> list[int]:
        return self.ciphers[point_id]

    def __len__(self) -> int:
        return len(self.ciphers)


def hdp_within_eps_cached(session: SmcSession, querier: Party,
                          querier_point: tuple[int, ...], peer: Party,
                          peer_point: tuple[int, ...], peer_point_id: int,
                          cache: PeerCipherCache, eps_squared: int,
                          value_bound: int, *,
                          ledger: LeakageLedger | None = None,
                          blind_cross_sum: bool = False,
                          label: str = "hdp_cached") -> bool:
    """HDP with the peer's encrypted coordinates cached across queries.

    Functionally identical to :func:`hdp_within_eps` (property-tested);
    differs in cost (the peer->querier ciphertext batch is sent once per
    point per run) and in disclosure (the stable ``peer_point_id``
    crosses the wire, recorded as ``LINKED_NEIGHBOR_ID`` on every hit).
    """
    if len(querier_point) != len(peer_point):
        raise DistanceProtocolError(
            f"dimension mismatch: {len(querier_point)} vs {len(peer_point)}")
    from repro.crypto.encoding import SignedEncoder
    from repro.crypto.paillier import PaillierCiphertext

    dimensions = len(querier_point)
    mask_bound = session.config.mask_bound(value_bound)
    peer_keys = session.paillier_keys(peer.name)
    public = peer_keys.public_key
    encoder = SignedEncoder(public.n)

    # Peer announces which cached entry this query uses (the linkable id)
    # and uploads the encrypted coordinates on first use.
    peer.send(f"{label}/point_id", peer_point_id)
    announced_id = querier.receive(f"{label}/point_id")
    if peer_point_id not in cache:
        encrypted = [public.encrypt(encoder.encode(c), peer.rng).value
                     for c in peer_point]
        peer.send(f"{label}/coords", encrypted)
        cache.store(peer_point_id, querier.receive(f"{label}/coords"))

    # Querier-side masks, as in the base protocol.
    masks = [querier.rng.randrange(-mask_bound, mask_bound + 1)
             for _ in range(dimensions - 1)]
    offset = (querier.rng.randrange(mask_bound + 1) if blind_cross_sum
              else 0)
    masks.append(offset - sum(masks))

    # Querier is the masker: reply = E(y_t)^{x_t} * E(r_t), rerandomized.
    replies = []
    for cipher_value, coordinate, mask in zip(cache.get(announced_id),
                                              querier_point, masks):
        product = (PaillierCiphertext(public, cipher_value)
                   * encoder.encode(coordinate))
        masked = product + public.encrypt(encoder.encode(mask), querier.rng)
        replies.append(masked.rerandomize(querier.rng).value)
    querier.send(f"{label}/masked_terms", replies)

    received = peer.receive(f"{label}/masked_terms")
    private = peer_keys.private_key
    cross_sum = sum(encoder.decode(private.decrypt_raw(value))
                    for value in received)

    querier_side = sum(c * c for c in querier_point)
    peer_side = sum(c * c for c in peer_point) - 2 * cross_sum
    threshold = eps_squared - querier_side - 2 * offset

    if ledger is not None and not blind_cross_sum:
        ledger.record(label, peer.name, Disclosure.DOT_PRODUCT,
                      detail="zero-sum masks expose the exact cross dot product")

    lo, hi = _comparison_interval(value_bound, eps_squared,
                                  mask_spread=2 * (mask_bound + 1))
    outcome = session.compare_leq(
        peer, peer_side, querier, threshold,
        lo=lo, hi=hi, reveal_to="b", label=f"{label}/threshold")
    if ledger is not None:
        ledger.record(label, querier.name, Disclosure.NEIGHBOR_BIT)
        if outcome.result:
            ledger.record(label, querier.name,
                          Disclosure.LINKED_NEIGHBOR_ID,
                          detail=f"stable peer point id {peer_point_id}")
    return outcome.result


def vdp_within_eps(session: SmcSession, alice: Party, alice_partial: int,
                   bob: Party, bob_partial: int, eps_squared: int,
                   value_bound: int, *, ledger: LeakageLedger | None = None,
                   reveal_to: str = "both",
                   label: str = "vdp") -> bool:
    """Protocol VDP: compare locally-computed partial squared distances.

    ``alice_partial`` / ``bob_partial`` are each party's sum of squared
    attribute differences over their own columns; the predicate is
    ``alice_partial <= eps^2 - bob_partial``.
    """
    lo, hi = _comparison_interval(value_bound, eps_squared)
    outcome = session.compare_leq(
        alice, alice_partial, bob, eps_squared - bob_partial,
        lo=lo, hi=hi, reveal_to=reveal_to, label=f"{label}/threshold")
    if ledger is not None:
        for learner in outcome.revealed_to:
            ledger.record(label, learner, Disclosure.NEIGHBOR_BIT)
    return outcome.result


def adp_within_eps(session: SmcSession, alice: Party, bob: Party,
                   x_values: dict[int, tuple[str, int]],
                   y_values: dict[int, tuple[str, int]],
                   eps_squared: int, value_bound: int, *,
                   ledger: LeakageLedger | None = None,
                   reveal_to: str = "both",
                   label: str = "adp") -> bool:
    """Protocol for arbitrarily partitioned data (Section 4.4).

    ``x_values`` / ``y_values`` map attribute index -> ``(owner, value)``
    for the two records.  Same-owner attributes accumulate locally
    (vertical part); cross-owner attributes route their products through
    the Multiplication Protocol to Bob with Alice-known masks whose sum
    Alice compensates on her side (horizontal part; the random-offset
    generalization is required here because a pair may share only one
    cross attribute -- see DESIGN.md).
    """
    if set(x_values) != set(y_values):
        raise DistanceProtocolError(
            "records disagree on attribute indices: "
            f"{sorted(x_values)} vs {sorted(y_values)}")

    alice_side = 0
    bob_side = 0
    # Cross terms: (alice_value, bob_value) pairs whose product is needed.
    cross_alice: list[int] = []
    cross_bob: list[int] = []

    for attribute in sorted(x_values):
        x_owner, x_value = x_values[attribute]
        y_owner, y_value = y_values[attribute]
        difference_squared = (x_value - y_value) ** 2
        if x_owner == y_owner == alice.name:
            alice_side += difference_squared
        elif x_owner == y_owner == bob.name:
            bob_side += difference_squared
        else:
            a_value = x_value if x_owner == alice.name else y_value
            b_value = y_value if x_owner == alice.name else x_value
            alice_side += a_value * a_value
            bob_side += b_value * b_value
            cross_alice.append(a_value)
            cross_bob.append(b_value)

    mask_bound = session.config.mask_bound(value_bound)
    offset = 0
    if cross_alice:
        masks = [alice.rng.randrange(-mask_bound, mask_bound + 1)
                 for _ in cross_alice]
        offset = sum(masks)
        received = session.masked_dot_terms(
            bob, cross_bob, alice, cross_alice, masks,
            label=f"{label}/cross_terms")
        bob_side += -2 * sum(received)  # -2 * (<a, b> + offset)

    # dist^2 = alice_side + bob_side + 2*offset; predicate:
    #   alice_side + 2*offset <= eps^2 - bob_side.
    lo, hi = _comparison_interval(
        value_bound, eps_squared,
        mask_spread=2 * len(cross_alice) * (mask_bound + 1))
    outcome = session.compare_leq(
        alice, alice_side + 2 * offset, bob, eps_squared - bob_side,
        lo=lo, hi=hi, reveal_to=reveal_to, label=f"{label}/threshold")
    if ledger is not None:
        for learner in outcome.revealed_to:
            ledger.record(label, learner, Disclosure.NEIGHBOR_BIT)
    return outcome.result
