"""The paper's distance protocols: HDP (4.2), VDP (4.3), ADP (4.4).

All three decide ``dist(d_x, d_y)^2 <= Eps^2`` for a pair of records
without either party seeing the other's attribute values; they differ in
who holds which pieces of the squared distance:

- **HDP** (horizontal): the querying party holds one whole record, the
  peer the other.  The peer obtains the masked cross terms through the
  Multiplication Protocol; the final comparison splits the distance as
  ``||d_x||^2`` (querier) + ``||d_y||^2 - 2<d_x, d_y>`` (peer).
- **VDP** (vertical): each party locally sums its own attributes'
  squared differences; one secure comparison finishes the job.
- **ADP** (arbitrary): attribute-by-attribute composition of the two.

Every function takes a ``value_bound`` -- the public upper bound on any
squared distance -- from which mask sizes and comparison intervals are
derived.  Results are directional: ``reveal_to`` states who may learn
the predicate (Algorithm 4 steps 3/13 give it to the querier only).

Region-query batching: :func:`hdp_region_query` (and its cached twin
:func:`hdp_region_query_cached`) run one whole Algorithm 4 step-3/13
region query -- the querier's point against *all* peer points -- through
a single batched cross-term exchange instead of one HDP per peer point.
The predicate bits, the comparison sub-protocols, and every ledger
disclosure are identical to the per-point loop (property-tested); only
the encryption count (querier: ``O(d)`` per query instead of
``O(n_peer * d)``) and the message count change.
"""

from __future__ import annotations

from repro.core.leakage import Disclosure, LeakageLedger
from repro.net.party import Party
from repro.smc.permutation import PermutedView
from repro.smc.session import SmcSession


class DistanceProtocolError(ValueError):
    """Raised on dimension mismatches."""


def _comparison_interval(value_bound: int, eps_squared: int,
                         mask_spread: int = 0) -> tuple[int, int]:
    """A public interval containing every side-value the protocols compare.

    Side values are sums/differences of squared norms, dot products, the
    threshold, and (when blinding) a mask, so +/- the sum of their bounds
    is always sufficient.
    """
    spread = 3 * value_bound + eps_squared + mask_spread + 1
    return -spread, spread


def hdp_within_eps(session: SmcSession, querier: Party,
                   querier_point: tuple[int, ...], peer: Party,
                   peer_point: tuple[int, ...], eps_squared: int,
                   value_bound: int, *, ledger: LeakageLedger | None = None,
                   blind_cross_sum: bool = False,
                   label: str = "hdp") -> bool:
    """Protocol HDP: querier learns whether the peer's point is within Eps.

    Faithful to Section 4.2: the querier draws per-attribute masks
    ``r_1..r_m`` summing to zero, the Multiplication Protocol hands the
    peer each ``d_x,t * d_y,t + r_t``, and YMPP (or the configured
    backend) compares the two halves of the squared distance.

    With ``blind_cross_sum=True`` the masks sum to a random offset the
    querier compensates for in the comparison, hiding the exact dot
    product from the peer (see DESIGN.md; the ledger records the
    difference).
    """
    if len(querier_point) != len(peer_point):
        raise DistanceProtocolError(
            f"dimension mismatch: {len(querier_point)} vs {len(peer_point)}")
    dimensions = len(querier_point)
    mask_bound = session.config.mask_bound(value_bound)

    # Querier-side masks r_1..r_m.
    masks = [querier.rng.randrange(-mask_bound, mask_bound + 1)
             for _ in range(dimensions - 1)]
    if blind_cross_sum:
        offset = querier.rng.randrange(mask_bound + 1)
    else:
        offset = 0  # the paper's "r_1 + ... + r_m = 0"
    masks.append(offset - sum(masks))

    # Multiplication Protocol batch: the peer receives d_x,t*d_y,t + r_t.
    received = session.masked_dot_terms(
        peer, list(peer_point), querier, list(querier_point), masks,
        label=f"{label}/cross_terms")
    cross_sum = sum(received)  # = <d_x, d_y> + offset

    if ledger is not None and not blind_cross_sum:
        ledger.record(label, peer.name, Disclosure.DOT_PRODUCT,
                      detail="zero-sum masks expose the exact cross dot product")

    # The peer's side absorbed -2*offset through the masked cross terms,
    # so dist^2 = querier_side + peer_side + 2*offset and the predicate
    # becomes: peer_side <= eps^2 - querier_side - 2*offset.
    querier_side = sum(c * c for c in querier_point)
    peer_side = sum(c * c for c in peer_point) - 2 * cross_sum
    threshold = eps_squared - querier_side - 2 * offset

    lo, hi = _comparison_interval(value_bound, eps_squared,
                                  mask_spread=2 * (mask_bound + 1))
    outcome = session.compare_leq(
        peer, peer_side, querier, threshold,
        lo=lo, hi=hi, reveal_to="b", label=f"{label}/threshold")
    if ledger is not None:
        ledger.record(label, querier.name, Disclosure.NEIGHBOR_BIT)
    return outcome.result


def _query_offsets(querier: Party, count: int, mask_bound: int, *,
                   blind_cross_sum: bool,
                   query_constant_blinding: bool) -> list[int]:
    """The querier-side blinding offsets for one region query.

    Paper-faithful mode: all zero (the zero-sum masks).  Blind mode:
    one fresh offset per peer point, or -- with
    ``query_constant_blinding`` -- a single offset shared by the whole
    query, which keeps the comparison thresholds constant so the DGK
    batch can amortize (the relative disclosure this buys is recorded
    by the caller).
    """
    if not blind_cross_sum:
        return [0] * count
    if query_constant_blinding:
        return [querier.rng.randrange(mask_bound + 1)] * count
    return [querier.rng.randrange(mask_bound + 1) for _ in range(count)]


def hdp_region_query(session: SmcSession, querier: Party,
                     querier_point: tuple[int, ...], peer: Party,
                     peer_points: list[tuple[int, ...]], eps_squared: int,
                     value_bound: int, *,
                     ledger: LeakageLedger | None = None,
                     blind_cross_sum: bool = False,
                     query_constant_blinding: bool = False,
                     batched_comparisons: bool = True,
                     label: str = "hdp") -> list[bool]:
    """Batched HDP: one region query against all of the peer's points.

    Semantically one :func:`hdp_within_eps` per peer point -- same
    predicate bits, same per-point ledger disclosures (``DOT_PRODUCT``
    to the peer unless blinded, ``NEIGHBOR_BIT`` to the querier), same
    comparison interval -- but the querier's coordinates are encrypted
    **once** for the whole query (``O(d)`` querier encryptions,
    independent of the peer point count) and the cross terms for every
    peer point travel in one message round-trip.  With
    ``batched_comparisons`` (the default) the per-point threshold
    comparisons also run as one amortized batch -- under the bitwise
    backend the querier's threshold bits are encrypted once per query
    instead of once per peer point (the threshold is constant when
    ``blind_cross_sum`` is off); ``False`` reproduces the per-point
    comparison loop for ablations.  Bits and disclosures are identical
    either way.  With ``blind_cross_sum`` the amortization normally
    degrades to per-point runs (per-point secret offsets);
    ``query_constant_blinding`` restores it by sharing one offset per
    query, trading the ``DOT_DIFFERENCE`` relative disclosure recorded
    in the ledger.

    The peer presents its points in a fresh random order
    (Algorithm 4's ``SetOfPointsOfBobPermutation``), so the returned
    bits -- in presentation order -- are unlinkable across queries; only
    their sum is meaningful to callers.
    """
    if not peer_points:
        return []
    for peer_point in peer_points:
        if len(querier_point) != len(peer_point):
            raise DistanceProtocolError(
                f"dimension mismatch: {len(querier_point)} vs "
                f"{len(peer_point)}")
    mask_bound = session.config.mask_bound(value_bound)

    view = PermutedView.fresh(len(peer_points), peer.rng)
    presented = [peer_points[view.true_index(position)]
                 for position in range(len(view))]
    offsets = _query_offsets(
        querier, len(presented), mask_bound,
        blind_cross_sum=blind_cross_sum,
        query_constant_blinding=query_constant_blinding)

    # Batched cross terms: the peer ends with <d_x, d_y_i> + offset_i for
    # every presented point -- exactly the per-point HDP cross sum.
    cross_sums = session.masked_dot_terms_batch(
        querier, list(querier_point), peer,
        [list(point) for point in presented], offsets,
        blind_bound=mask_bound, label=f"{label}/cross_terms")

    return _batched_threshold_comparisons(
        session, querier, querier_point, peer, presented, cross_sums,
        offsets, eps_squared, value_bound, mask_bound, ledger=ledger,
        blind_cross_sum=blind_cross_sum,
        query_constant_blinding=query_constant_blinding, point_ids=None,
        batched_comparisons=batched_comparisons, label=label)


def _batched_threshold_comparisons(session: SmcSession, querier: Party,
                                   querier_point: tuple[int, ...],
                                   peer: Party,
                                   presented: list[tuple[int, ...]],
                                   cross_sums: list[int],
                                   offsets: list[int], eps_squared: int,
                                   value_bound: int, mask_bound: int, *,
                                   ledger: LeakageLedger | None,
                                   blind_cross_sum: bool,
                                   query_constant_blinding: bool = False,
                                   point_ids: list[int] | None,
                                   batched_comparisons: bool = True,
                                   label: str) -> list[bool]:
    """Per-point threshold comparisons shared by the batched variants.

    Reproduces the per-point HDP tail exactly: identical comparison
    sides, interval, reveal direction, and ledger record sequence.

    With ``batched_comparisons`` (the default) all thresholds of the
    query go through :meth:`SmcSession.compare_leq_batch` in one call --
    the querier's threshold ``eps^2 - querier_side - 2*offset`` is
    constant across the query when ``blind_cross_sum`` is off, so the
    bitwise backend shares a single DGK bit-encryption for the whole
    query.  The predicate bits, invocation counts, and ledger record
    sequence are identical to the per-point loop (property-tested); off
    reproduces the per-point comparisons for ablations.
    """
    querier_side = sum(c * c for c in querier_point)
    lo, hi = _comparison_interval(value_bound, eps_squared,
                                  mask_spread=2 * (mask_bound + 1))
    if batched_comparisons:
        peer_sides = [sum(c * c for c in peer_point) - 2 * cross_sum
                      for peer_point, cross_sum in zip(presented, cross_sums)]
        thresholds = [eps_squared - querier_side - 2 * offset
                      for offset in offsets]
        # Without blinding the offsets are all zero, so the querier's
        # threshold is constant across the query *by protocol structure*
        # (public knowledge) and the comparison may amortize one
        # bit-encryption across the batch.  The same structural argument
        # holds under query-constant blinding: the offset is secret but
        # declared shared across the query, so the constant-side batch
        # is public shape, not a value leak.  With per-point blinding
        # the thresholds are per-point secrets; amortization is never
        # declared, so the message pattern cannot leak offset
        # collisions.
        amortize = not blind_cross_sum or query_constant_blinding
        outcomes = session.compare_leq_batch(
            peer, peer_sides, querier, thresholds,
            lo=lo, hi=hi, reveal_to="b", amortize=amortize,
            label=f"{label}/threshold")
    else:
        outcomes = []
        for peer_point, cross_sum, offset in zip(presented, cross_sums,
                                                 offsets):
            peer_side = sum(c * c for c in peer_point) - 2 * cross_sum
            threshold = eps_squared - querier_side - 2 * offset
            outcomes.append(session.compare_leq(
                peer, peer_side, querier, threshold,
                lo=lo, hi=hi, reveal_to="b", label=f"{label}/threshold"))
    # Ledger records replay in per-point order -- DOT_PRODUCT before each
    # point's NEIGHBOR_BIT -- so the disclosure sequence is identical to
    # one hdp_within_eps per peer point.  Query-constant blinding adds
    # its own record up front: the shared offset hands the peer the
    # exact differences between this query's cross dot products.
    if (ledger is not None and blind_cross_sum and query_constant_blinding
            and len(presented) > 1):
        ledger.record(label, peer.name, Disclosure.DOT_DIFFERENCE,
                      detail=f"query-constant blind offset over "
                             f"{len(presented)} cross sums")
    results = []
    for position, outcome in enumerate(outcomes):
        if ledger is not None and not blind_cross_sum:
            ledger.record(label, peer.name, Disclosure.DOT_PRODUCT,
                          detail="zero-sum masks expose the exact cross "
                                 "dot product")
        if ledger is not None:
            ledger.record(label, querier.name, Disclosure.NEIGHBOR_BIT)
            if point_ids is not None and outcome.result:
                ledger.record(label, querier.name,
                              Disclosure.LINKED_NEIGHBOR_ID,
                              detail=f"stable peer point id "
                                     f"{point_ids[position]}")
        results.append(outcome.result)
    return results


class PeerCipherCache:
    """Cache of a peer's encrypted coordinates, keyed by stable point id.

    The optimization behind :func:`hdp_within_eps_cached`: a peer point's
    Paillier-encrypted coordinates depend only on the point and the key,
    so they can be transmitted once per run instead of once per query.
    The price is a *stable identifier* on the wire -- the querier can now
    link hits on the same peer point across queries, which is precisely
    the disclosure that re-enables the Figure 1 intersection attack.
    Experiment E12 measures both sides of the trade.
    """

    def __init__(self):
        self.ciphers: dict[int, list[int]] = {}

    def __contains__(self, point_id: int) -> bool:
        return point_id in self.ciphers

    def store(self, point_id: int, cipher_values: list[int]) -> None:
        self.ciphers[point_id] = list(cipher_values)

    def get(self, point_id: int) -> list[int]:
        return self.ciphers[point_id]

    def __len__(self) -> int:
        return len(self.ciphers)


def hdp_within_eps_cached(session: SmcSession, querier: Party,
                          querier_point: tuple[int, ...], peer: Party,
                          peer_point: tuple[int, ...], peer_point_id: int,
                          cache: PeerCipherCache, eps_squared: int,
                          value_bound: int, *,
                          ledger: LeakageLedger | None = None,
                          blind_cross_sum: bool = False,
                          label: str = "hdp_cached") -> bool:
    """HDP with the peer's encrypted coordinates cached across queries.

    Functionally identical to :func:`hdp_within_eps` (property-tested);
    differs in cost (the peer->querier ciphertext batch is sent once per
    point per run) and in disclosure (the stable ``peer_point_id``
    crosses the wire, recorded as ``LINKED_NEIGHBOR_ID`` on every hit).
    """
    if len(querier_point) != len(peer_point):
        raise DistanceProtocolError(
            f"dimension mismatch: {len(querier_point)} vs {len(peer_point)}")
    from repro.crypto.encoding import SignedEncoder
    from repro.crypto.paillier import PaillierCiphertext

    dimensions = len(querier_point)
    mask_bound = session.config.mask_bound(value_bound)
    peer_keys = session.paillier_keys(peer.name)
    public = peer_keys.public_key
    encoder = SignedEncoder(public.n)

    # Peer announces which cached entry this query uses (the linkable id)
    # and uploads the encrypted coordinates on first use.
    peer.send(f"{label}/point_id", peer_point_id)
    announced_id = querier.receive(f"{label}/point_id")
    if peer_point_id not in cache:
        encrypted = [cipher.value for cipher in session.engine.encrypt_batch(
            public, [encoder.encode(c) for c in peer_point], peer.rng,
            session.pool(peer, peer))]
        peer.send(f"{label}/coords", encrypted)
        cache.store(peer_point_id, querier.receive(f"{label}/coords"))

    # Querier-side masks, as in the base protocol.
    masks = [querier.rng.randrange(-mask_bound, mask_bound + 1)
             for _ in range(dimensions - 1)]
    offset = (querier.rng.randrange(mask_bound + 1) if blind_cross_sum
              else 0)
    masks.append(offset - sum(masks))

    # Querier is the masker: reply = E(y_t)^{x_t} * E(r_t), rerandomized.
    querier_pool = session.pool(querier, peer)
    replies = []
    for cipher_value, coordinate, mask in zip(cache.get(announced_id),
                                              querier_point, masks):
        product = (PaillierCiphertext(public, cipher_value)
                   * encoder.encode(coordinate))
        masked = product + public.encrypt(encoder.encode(mask), querier.rng,
                                          querier_pool)
        replies.append(masked.rerandomize(querier.rng, querier_pool).value)
    querier.send(f"{label}/masked_terms", replies)

    received = peer.receive(f"{label}/masked_terms")
    cross_sum = sum(
        encoder.decode(value) for value in session.engine.decrypt_raw_batch(
            peer_keys.private_key, received))

    querier_side = sum(c * c for c in querier_point)
    peer_side = sum(c * c for c in peer_point) - 2 * cross_sum
    threshold = eps_squared - querier_side - 2 * offset

    if ledger is not None and not blind_cross_sum:
        ledger.record(label, peer.name, Disclosure.DOT_PRODUCT,
                      detail="zero-sum masks expose the exact cross dot product")

    lo, hi = _comparison_interval(value_bound, eps_squared,
                                  mask_spread=2 * (mask_bound + 1))
    outcome = session.compare_leq(
        peer, peer_side, querier, threshold,
        lo=lo, hi=hi, reveal_to="b", label=f"{label}/threshold")
    if ledger is not None:
        ledger.record(label, querier.name, Disclosure.NEIGHBOR_BIT)
        if outcome.result:
            ledger.record(label, querier.name,
                          Disclosure.LINKED_NEIGHBOR_ID,
                          detail=f"stable peer point id {peer_point_id}")
    return outcome.result


def hdp_region_query_cached(session: SmcSession, querier: Party,
                            querier_point: tuple[int, ...], peer: Party,
                            peer_points: list[tuple[int, ...]],
                            point_ids: list[int], cache: PeerCipherCache,
                            eps_squared: int, value_bound: int, *,
                            ledger: LeakageLedger | None = None,
                            blind_cross_sum: bool = False,
                            query_constant_blinding: bool = False,
                            batched_comparisons: bool = True,
                            label: str = "hdp_cached") -> list[bool]:
    """Batched cached HDP: one region query over the peer's cached ciphers.

    The batched form of :func:`hdp_within_eps_cached`: the peer's
    encrypted coordinates are uploaded once per stable ``point_id`` (the
    linkable disclosure E12 measures -- recorded per hit exactly as in
    the per-point variant), and each query sends back **one accumulated
    ciphertext per peer point** -- ``E(<d_x, d_y_i> + offset_i)`` built
    homomorphically from the cached coordinates -- instead of ``d``
    masked terms per point.  The peer decrypts the same cross sum the
    per-point protocol delivers, so bits and disclosures are identical.
    """
    if len(point_ids) != len(peer_points):
        raise DistanceProtocolError(
            f"{len(peer_points)} peer points but {len(point_ids)} ids")
    for peer_point in peer_points:
        if len(querier_point) != len(peer_point):
            raise DistanceProtocolError(
                f"dimension mismatch: {len(querier_point)} vs "
                f"{len(peer_point)}")
    if not peer_points:
        return []
    from repro.crypto.encoding import SignedEncoder
    from repro.crypto.paillier import PaillierCiphertext

    mask_bound = session.config.mask_bound(value_bound)
    peer_keys = session.paillier_keys(peer.name)
    public = peer_keys.public_key
    encoder = SignedEncoder(public.n)

    # First-use upload: ids the cache has not seen yet, in one message.
    missing = [(point_id, point)
               for point_id, point in zip(point_ids, peer_points)
               if point_id not in cache]
    if missing:
        peer_pool = session.pool(peer, peer)
        # One engine batch over all missing coordinates, in the same
        # RNG order as per-point encryption, then regrouped per point.
        flat = session.engine.encrypt_batch(
            public,
            [encoder.encode(c) for _, point in missing for c in point],
            peer.rng, peer_pool)
        payload = []
        cursor = 0
        for point_id, point in missing:
            payload.append([point_id, [cipher.value for cipher in
                                       flat[cursor:cursor + len(point)]]])
            cursor += len(point)
        peer.send(f"{label}/coords", payload)
        for point_id, ciphers in querier.receive(f"{label}/coords"):
            cache.store(point_id, ciphers)

    offsets = _query_offsets(
        querier, len(peer_points), mask_bound,
        blind_cross_sum=blind_cross_sum,
        query_constant_blinding=query_constant_blinding)

    # Querier accumulates E(<d_x, d_y_i> + offset_i) per cached point.
    querier_pool = session.pool(querier, peer)
    replies = []
    for point_id, offset in zip(point_ids, offsets):
        accumulator = None
        for cipher_value, coordinate in zip(cache.get(point_id),
                                            querier_point):
            term = (PaillierCiphertext(public, cipher_value)
                    * encoder.encode(coordinate))
            accumulator = term if accumulator is None else accumulator + term
        if offset:
            accumulator = accumulator + encoder.encode(offset)
        replies.append(accumulator.rerandomize(querier.rng,
                                               querier_pool).value)
    querier.send(f"{label}/masked_sums", replies)

    cross_sums = [encoder.decode(value) for value in
                  session.engine.decrypt_raw_batch(
                      peer_keys.private_key,
                      peer.receive(f"{label}/masked_sums"))]

    return _batched_threshold_comparisons(
        session, querier, querier_point, peer, list(peer_points),
        cross_sums, offsets, eps_squared, value_bound, mask_bound,
        ledger=ledger, blind_cross_sum=blind_cross_sum,
        query_constant_blinding=query_constant_blinding,
        point_ids=list(point_ids),
        batched_comparisons=batched_comparisons, label=label)


def vdp_within_eps(session: SmcSession, alice: Party, alice_partial: int,
                   bob: Party, bob_partial: int, eps_squared: int,
                   value_bound: int, *, ledger: LeakageLedger | None = None,
                   reveal_to: str = "both",
                   label: str = "vdp") -> bool:
    """Protocol VDP: compare locally-computed partial squared distances.

    ``alice_partial`` / ``bob_partial`` are each party's sum of squared
    attribute differences over their own columns; the predicate is
    ``alice_partial <= eps^2 - bob_partial``.
    """
    lo, hi = _comparison_interval(value_bound, eps_squared)
    outcome = session.compare_leq(
        alice, alice_partial, bob, eps_squared - bob_partial,
        lo=lo, hi=hi, reveal_to=reveal_to, label=f"{label}/threshold")
    if ledger is not None:
        for learner in outcome.revealed_to:
            ledger.record(label, learner, Disclosure.NEIGHBOR_BIT)
    return outcome.result


def adp_within_eps(session: SmcSession, alice: Party, bob: Party,
                   x_values: dict[int, tuple[str, int]],
                   y_values: dict[int, tuple[str, int]],
                   eps_squared: int, value_bound: int, *,
                   ledger: LeakageLedger | None = None,
                   reveal_to: str = "both",
                   label: str = "adp") -> bool:
    """Protocol for arbitrarily partitioned data (Section 4.4).

    ``x_values`` / ``y_values`` map attribute index -> ``(owner, value)``
    for the two records.  Same-owner attributes accumulate locally
    (vertical part); cross-owner attributes route their products through
    the Multiplication Protocol to Bob with Alice-known masks whose sum
    Alice compensates on her side (horizontal part; the random-offset
    generalization is required here because a pair may share only one
    cross attribute -- see DESIGN.md).
    """
    if set(x_values) != set(y_values):
        raise DistanceProtocolError(
            "records disagree on attribute indices: "
            f"{sorted(x_values)} vs {sorted(y_values)}")

    alice_side = 0
    bob_side = 0
    # Cross terms: (alice_value, bob_value) pairs whose product is needed.
    cross_alice: list[int] = []
    cross_bob: list[int] = []

    for attribute in sorted(x_values):
        x_owner, x_value = x_values[attribute]
        y_owner, y_value = y_values[attribute]
        difference_squared = (x_value - y_value) ** 2
        if x_owner == y_owner == alice.name:
            alice_side += difference_squared
        elif x_owner == y_owner == bob.name:
            bob_side += difference_squared
        else:
            a_value = x_value if x_owner == alice.name else y_value
            b_value = y_value if x_owner == alice.name else x_value
            alice_side += a_value * a_value
            bob_side += b_value * b_value
            cross_alice.append(a_value)
            cross_bob.append(b_value)

    mask_bound = session.config.mask_bound(value_bound)
    offset = 0
    if cross_alice:
        masks = [alice.rng.randrange(-mask_bound, mask_bound + 1)
                 for _ in cross_alice]
        offset = sum(masks)
        received = session.masked_dot_terms(
            bob, cross_bob, alice, cross_alice, masks,
            label=f"{label}/cross_terms")
        bob_side += -2 * sum(received)  # -2 * (<a, b> + offset)

    # dist^2 = alice_side + bob_side + 2*offset; predicate:
    #   alice_side + 2*offset <= eps^2 - bob_side.
    lo, hi = _comparison_interval(
        value_bound, eps_squared,
        mask_spread=2 * len(cross_alice) * (mask_bound + 1))
    outcome = session.compare_leq(
        alice, alice_side + 2 * offset, bob, eps_squared - bob_side,
        lo=lo, hi=hi, reveal_to=reveal_to, label=f"{label}/threshold")
    if ledger is not None:
        for learner in outcome.revealed_to:
            ledger.record(label, learner, Disclosure.NEIGHBOR_BIT)
    return outcome.result
