"""Enhanced privacy preserving DBSCAN over horizontal data (Section 5).

Same clustering output as Algorithms 3 + 4 (tested), strictly less
disclosure: instead of revealing how many of the peer's points fall in a
neighbourhood, each core-point test reveals a single bit -- whether the
peer holds at least ``k = MinPts - |own neighbours|`` points within Eps
(Theorem 11's statement).

The core test per queried point ``A``:

1. ``k <= 0``: core, with **zero interaction** (own points suffice).
2. ``k > n_peer``: not core, with zero interaction.
3. Otherwise the parties run the Section 5 machinery:

   a. Distance sharing via the Multiplication Protocol in its batched
      scalar-product form: the driver's vector
      ``alpha = (sum A_t^2, -2A_1, ..., -2A_m, 1)`` meets the peer's
      ``beta_i = (1, B_i1, ..., B_im, sum B_it^2)`` so the driver learns
      ``u_i = dist^2(A, B_i) + v_i`` with ``v_i`` private to the peer.
   b. Secure selection of the k-th smallest shared distance
      (scan ``O(kn)`` or quickselect expected ``O(n)``, paper's two
      variants) through YMPP comparisons of
      ``(u_i - u_j)`` vs ``(v_i - v_j)``.
   c. One final comparison ``u_kth - Eps^2 <= v_kth`` -- the core bit.

Expansion then proceeds exactly as in Algorithm 4 (through own points
only; Algorithm 8).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.clustering.labels import (
    NOISE,
    UNCLASSIFIED,
    ClusterLabels,
    next_cluster_id,
)
from repro.clustering.neighborhoods import make_index
from repro.core.config import ProtocolConfig
from repro.core.leakage import Disclosure, LeakageLedger
from repro.data.partitioning import HorizontalPartition
from repro.data.quantize import squared_distance_bound
from repro.net.channel import Channel
from repro.net.party import Party, make_party_pair
from repro.smc.permutation import PermutedView
from repro.smc.secret_sharing import SharedValues
from repro.smc.session import SmcSession, channel_for_config


@dataclass(frozen=True)
class EnhancedRunResult:
    """Output of an enhanced horizontal run."""

    alice_labels: tuple[int, ...]
    bob_labels: tuple[int, ...]
    ledger: LeakageLedger
    stats: dict
    comparisons: int


def run_enhanced_horizontal_dbscan(partition: HorizontalPartition,
                                   config: ProtocolConfig,
                                   *, channel: Channel | None = None,
                                   session: SmcSession | None = None,
                                   ) -> EnhancedRunResult:
    """Run Algorithms 7 + 8 over a horizontal partition.

    A pre-built ``session`` may be supplied so callers can run the
    offline phase (``session.precompute_pools``) outside whatever they
    are timing; otherwise channel, parties, and session are created here.
    """
    if session is None:
        channel = (channel if channel is not None
                   else channel_for_config(config.smc))
        alice, bob = make_party_pair(channel, config.alice_seed,
                                     config.bob_seed)
        session = SmcSession(alice, bob, config.smc)
    elif channel is not None:
        raise ValueError("pass either channel or session, not both")
    else:
        alice, bob = session.alice, session.bob
    ledger = LeakageLedger()

    value_bound = squared_distance_bound(partition.alice_points,
                                         partition.bob_points)

    alice_labels = _party_pass(
        session, driver=alice, driver_points=list(partition.alice_points),
        peer=bob, peer_points=list(partition.bob_points),
        config=config, value_bound=value_bound, ledger=ledger,
        label="enhanced/alice_pass")
    bob_labels = _party_pass(
        session, driver=bob, driver_points=list(partition.bob_points),
        peer=alice, peer_points=list(partition.alice_points),
        config=config, value_bound=value_bound, ledger=ledger,
        label="enhanced/bob_pass")

    return EnhancedRunResult(
        alice_labels=alice_labels.as_tuple(),
        bob_labels=bob_labels.as_tuple(),
        ledger=ledger,
        stats=alice.endpoint.stats.snapshot(),
        comparisons=session.comparison_backend.invocations,
    )


def _party_pass(session: SmcSession, *, driver: Party,
                driver_points: list[tuple[int, ...]], peer: Party,
                peer_points: list[tuple[int, ...]], config: ProtocolConfig,
                value_bound: int, ledger: LeakageLedger,
                label: str) -> ClusterLabels:
    """Algorithm 7 for one driving party."""
    labels = ClusterLabels(len(driver_points))
    index = make_index(driver_points, config.eps_squared,
                       use_grid=config.use_grid_index)
    cluster_id = next_cluster_id(NOISE)
    for point_index in range(len(driver_points)):
        if labels.is_unclassified(point_index):
            if _enhanced_expand_cluster(
                    session, driver=driver, index=index, labels=labels,
                    point_index=point_index, cluster_id=cluster_id,
                    peer=peer, peer_points=peer_points, config=config,
                    value_bound=value_bound, ledger=ledger, label=label):
                cluster_id = next_cluster_id(cluster_id)
    return labels


def _enhanced_expand_cluster(session: SmcSession, *, driver: Party,
                             index, labels: ClusterLabels,
                             point_index: int, cluster_id: int, peer: Party,
                             peer_points: list[tuple[int, ...]],
                             config: ProtocolConfig, value_bound: int,
                             ledger: LeakageLedger, label: str) -> bool:
    """Algorithm 8 (EnhancedExpandCluster) for the driving party."""
    eps_squared = config.eps_squared
    seeds = index.region_query(index.points[point_index], eps_squared)
    if not _is_core_point(session, driver, index.points[point_index],
                          len(seeds), peer, peer_points, config,
                          value_bound, ledger, label=label):
        labels.change_cluster_id(point_index, NOISE)
        return False

    labels.change_cluster_ids(seeds, cluster_id)
    queue = deque(s for s in seeds if s != point_index)
    while queue:
        current = queue.popleft()
        result = index.region_query(index.points[current], eps_squared)
        if _is_core_point(session, driver, index.points[current],
                          len(result), peer, peer_points, config,
                          value_bound, ledger, label=label):
            for neighbor in result:
                if labels[neighbor] in (UNCLASSIFIED, NOISE):
                    if labels[neighbor] == UNCLASSIFIED:
                        queue.append(neighbor)
                    labels.change_cluster_id(neighbor, cluster_id)
    return True


def _is_core_point(session: SmcSession, driver: Party,
                   query_point: tuple[int, ...], own_neighbor_count: int,
                   peer: Party, peer_points: list[tuple[int, ...]],
                   config: ProtocolConfig, value_bound: int,
                   ledger: LeakageLedger, *, label: str) -> bool:
    """Section 5's "Updated Protocol": the single-bit core test."""
    needed = config.min_pts - own_neighbor_count
    if needed <= 0:
        # Own points already reach MinPts: no interaction, no disclosure.
        return True
    if needed > len(peer_points):
        # Even all of the peer's points could not reach MinPts.
        return False

    shares = _share_distances(session, driver, query_point, peer,
                              peer_points, value_bound, label=label)
    kth_index = session.kth_smallest(
        driver, peer, shares, needed, method=config.selection,
        label=f"{label}/kselect")
    order_bits = session.comparison_backend.invocations
    ledger.record(label, driver.name, Disclosure.ORDER_BIT,
                  detail=f"selection used secure comparisons "
                         f"(cumulative {order_bits})")

    # Final test: dist_kth <= Eps^2  <=>  u_kth - Eps^2 <= v_kth.
    lo, hi = shares.threshold_interval(config.eps_squared)
    outcome = session.compare_leq(
        driver, shares.u_values[kth_index] - config.eps_squared,
        peer, shares.v_values[kth_index],
        lo=lo, hi=hi, reveal_to="a", label=f"{label}/core_test")
    ledger.record(label, driver.name, Disclosure.CORE_BIT,
                  detail=f"k={needed}")
    return outcome.result


def _share_distances(session: SmcSession, driver: Party,
                     query_point: tuple[int, ...], peer: Party,
                     peer_points: list[tuple[int, ...]], value_bound: int,
                     *, label: str) -> SharedValues:
    """Section 5 distance sharing over a fresh permutation of peer points.

    ``alpha = (sum A_t^2, -2A_1, ..., -2A_m, 1)`` and
    ``beta_i = (1, B_i1, ..., B_im, sum B_it^2)`` give
    ``<alpha, beta_i> = dist^2(A, B_i)``; the Multiplication Protocol
    hands the driver ``u_i = dist^2 + v_i``.
    """
    view = PermutedView.fresh(len(peer_points), peer.rng)
    alpha = [sum(c * c for c in query_point)]
    alpha.extend(-2 * c for c in query_point)
    alpha.append(1)

    mask_bound = session.config.mask_bound(value_bound)
    betas = []
    masks = []
    for permuted_position in range(len(view)):
        peer_point = peer_points[view.true_index(permuted_position)]
        beta = [1]
        beta.extend(peer_point)
        beta.append(sum(c * c for c in peer_point))
        betas.append(beta)
        masks.append(peer.rng.randrange(mask_bound))

    u_values = session.scalar_products(driver, alpha, peer, betas, masks,
                                       label=f"{label}/share")
    return SharedValues(
        u_values=tuple(u_values),
        v_values=tuple(masks),
        value_bound=value_bound,
        mask_bound=mask_bound,
    )
