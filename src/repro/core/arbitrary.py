"""Privacy preserving DBSCAN over arbitrarily partitioned data (Sec. 4.4).

"Arbitrarily partitioned data = vertically partitioned data +
horizontally partitioned data" (Figure 4): ownership is decided per
record, per attribute.  Every record id is known to both parties, so the
control flow is the vertical one (Algorithms 5 + 6); only the distance
predicate changes -- Protocol ADP decomposes each pair's squared
distance into same-owner terms (accumulated locally, the vertical part)
and cross-owner terms (routed through the Multiplication Protocol, the
horizontal part), then one secure comparison decides the predicate.

Matches centralized DBSCAN on the joint database exactly, like the
vertical protocol.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.clustering.labels import (
    NOISE,
    UNCLASSIFIED,
    ClusterLabels,
    next_cluster_id,
)
from repro.core.config import ProtocolConfig
from repro.core.distance import adp_within_eps
from repro.core.leakage import Disclosure, LeakageLedger
from repro.data.partitioning import ArbitraryPartition
from repro.data.quantize import squared_distance_bound
from repro.net.channel import Channel
from repro.net.party import make_party_pair
from repro.smc.session import SmcSession, channel_for_config


@dataclass(frozen=True)
class ArbitraryRunResult:
    """Output of an arbitrary-partition run (labels are the joint output)."""

    labels: tuple[int, ...]
    ledger: LeakageLedger
    stats: dict
    comparisons: int


def run_arbitrary_dbscan(partition: ArbitraryPartition,
                         config: ProtocolConfig,
                         *, channel: Channel | None = None,
                         ) -> ArbitraryRunResult:
    """Run the Section 4.4 protocol over an arbitrary partition."""
    channel = (channel if channel is not None
                   else channel_for_config(config.smc))
    alice, bob = make_party_pair(channel, config.alice_seed, config.bob_seed)
    session = SmcSession(alice, bob, config.smc)
    ledger = LeakageLedger()

    value_bound = squared_distance_bound(partition.values, partition.values)
    runner = _ArbitraryPass(session=session, partition=partition,
                            config=config, value_bound=value_bound,
                            ledger=ledger)
    labels = runner.run()
    return ArbitraryRunResult(
        labels=labels.as_tuple(),
        ledger=ledger,
        stats=channel.stats.snapshot(),
        comparisons=session.comparison_backend.invocations,
    )


class _ArbitraryPass:
    """Algorithms 5 + 6 control flow with the ADP distance predicate."""

    def __init__(self, *, session: SmcSession, partition: ArbitraryPartition,
                 config: ProtocolConfig, value_bound: int,
                 ledger: LeakageLedger):
        self.session = session
        self.partition = partition
        self.config = config
        self.value_bound = value_bound
        self.ledger = ledger
        self.labels = ClusterLabels(partition.size)

    def run(self) -> ClusterLabels:
        cluster_id = next_cluster_id(NOISE)
        for record in range(self.partition.size):
            if self.labels.is_unclassified(record):
                if self._expand_cluster(record, cluster_id):
                    cluster_id = next_cluster_id(cluster_id)
        return self.labels

    def _expand_cluster(self, record: int, cluster_id: int) -> bool:
        seeds = self._region_query(record)
        if len(seeds) < self.config.min_pts:
            self.labels.change_cluster_id(record, NOISE)
            return False
        self.labels.change_cluster_ids(seeds, cluster_id)
        queue = deque(s for s in seeds if s != record)
        while queue:
            current = queue.popleft()
            result = self._region_query(current)
            if len(result) >= self.config.min_pts:
                for neighbor in result:
                    if self.labels[neighbor] in (UNCLASSIFIED, NOISE):
                        if self.labels[neighbor] == UNCLASSIFIED:
                            queue.append(neighbor)
                        self.labels.change_cluster_id(neighbor, cluster_id)
        return True

    def _region_query(self, record: int) -> list[int]:
        neighbors = [record]
        for other in range(self.partition.size):
            if other == record:
                continue
            within = adp_within_eps(
                self.session, self.session.alice, self.session.bob,
                self._ownership_view(record), self._ownership_view(other),
                self.config.eps_squared, self.value_bound,
                ledger=self.ledger, reveal_to="both", label="arbitrary/adp")
            if within:
                neighbors.append(other)
        for party in (self.session.alice, self.session.bob):
            self.ledger.record("arbitrary", party.name,
                               Disclosure.NEIGHBOR_COUNT,
                               detail=f"record {record}: {len(neighbors)}")
        return sorted(neighbors)

    def _ownership_view(self, record: int) -> dict[int, tuple[str, int]]:
        """Attribute -> (owner, value) map Protocol ADP consumes."""
        return {
            attribute: (self.partition.owner_of(record, attribute),
                        self.partition.values[record][attribute])
            for attribute in range(self.partition.dimensions)
        }
