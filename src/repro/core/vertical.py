"""Privacy preserving DBSCAN over vertically partitioned data.

Algorithms 5 and 6 of the paper.  Both parties know every record id (the
split is by attribute, Figure 3), so a single shared DBSCAN control flow
runs; only the neighbourhood predicate is secured.  For each candidate
pair, each party locally sums the squared differences over its own
attributes and Protocol VDP compares ``partA <= Eps^2 - partB`` -- both
parties learn the outcome, which is part of the protocol's defined
output (Theorem 10 reveals the neighbourhood size of each queried
point).

Because expansion is unrestricted, the result matches centralized DBSCAN
over the joint database exactly (property-tested).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.clustering.labels import (
    NOISE,
    UNCLASSIFIED,
    ClusterLabels,
    next_cluster_id,
)
from repro.core.config import ProtocolConfig
from repro.core.distance import vdp_within_eps
from repro.core.leakage import Disclosure, LeakageLedger
from repro.data.partitioning import VerticalPartition
from repro.data.quantize import squared_distance_bound
from repro.net.channel import Channel
from repro.net.party import make_party_pair
from repro.smc.session import SmcSession, channel_for_config


@dataclass(frozen=True)
class VerticalRunResult:
    """Output of a vertical protocol run (labels are the joint output)."""

    labels: tuple[int, ...]
    ledger: LeakageLedger
    stats: dict
    comparisons: int


def run_vertical_dbscan(partition: VerticalPartition,
                        config: ProtocolConfig,
                        *, channel: Channel | None = None,
                        ) -> VerticalRunResult:
    """Run Algorithms 5 + 6 over a vertical partition."""
    channel = (channel if channel is not None
                   else channel_for_config(config.smc))
    alice, bob = make_party_pair(channel, config.alice_seed, config.bob_seed)
    session = SmcSession(alice, bob, config.smc)
    ledger = LeakageLedger()

    value_bound = squared_distance_bound(partition.alice_records,
                                         partition.bob_records)
    runner = _VerticalPass(session=session, partition=partition,
                           config=config, value_bound=value_bound,
                           ledger=ledger)
    labels = runner.run()
    return VerticalRunResult(
        labels=labels.as_tuple(),
        ledger=ledger,
        stats=channel.stats.snapshot(),
        comparisons=session.comparison_backend.invocations,
    )


class _VerticalPass:
    """The shared control flow of Algorithms 5 + 6."""

    def __init__(self, *, session: SmcSession, partition: VerticalPartition,
                 config: ProtocolConfig, value_bound: int,
                 ledger: LeakageLedger):
        self.session = session
        self.partition = partition
        self.config = config
        self.value_bound = value_bound
        self.ledger = ledger
        self.labels = ClusterLabels(partition.size)

    def run(self) -> ClusterLabels:
        cluster_id = next_cluster_id(NOISE)
        for record in range(self.partition.size):
            if self.labels.is_unclassified(record):
                if self._expand_cluster(record, cluster_id):
                    cluster_id = next_cluster_id(cluster_id)
        return self.labels

    def _expand_cluster(self, record: int, cluster_id: int) -> bool:
        seeds = self._region_query(record)
        if len(seeds) < self.config.min_pts:
            self.labels.change_cluster_id(record, NOISE)
            return False
        self.labels.change_cluster_ids(seeds, cluster_id)
        queue = deque(s for s in seeds if s != record)
        while queue:
            current = queue.popleft()
            result = self._region_query(current)
            if len(result) >= self.config.min_pts:
                for neighbor in result:
                    if self.labels[neighbor] in (UNCLASSIFIED, NOISE):
                        if self.labels[neighbor] == UNCLASSIFIED:
                            queue.append(neighbor)
                        self.labels.change_cluster_id(neighbor, cluster_id)
        return True

    def _region_query(self, record: int) -> list[int]:
        """Algorithm 6's regionQuery via Protocol VDP, pair by pair.

        The queried record itself is included for free (distance zero);
        every other pair costs one secure comparison -- the paper's
        ``O(n^2)`` YMPP executions (Section 4.3.2).
        """
        neighbors = [record]
        for other in range(self.partition.size):
            if other == record:
                continue
            alice_partial = _partial_squared_distance(
                self.partition.alice_records, record, other)
            bob_partial = _partial_squared_distance(
                self.partition.bob_records, record, other)
            within = vdp_within_eps(
                self.session, self.session.alice, alice_partial,
                self.session.bob, bob_partial, self.config.eps_squared,
                self.value_bound, ledger=self.ledger,
                reveal_to="both", label="vertical/vdp")
            if within:
                neighbors.append(other)
        self.ledger.record("vertical", self.session.alice.name,
                           Disclosure.NEIGHBOR_COUNT,
                           detail=f"record {record}: {len(neighbors)}")
        self.ledger.record("vertical", self.session.bob.name,
                           Disclosure.NEIGHBOR_COUNT,
                           detail=f"record {record}: {len(neighbors)}")
        return sorted(neighbors)


def _partial_squared_distance(records, x: int, y: int) -> int:
    """One party's local share of the squared distance."""
    return sum((a - b) * (a - b) for a, b in zip(records[x], records[y]))
