"""Privacy preserving DBSCAN over horizontally partitioned data.

Algorithms 3 and 4 of the paper, as two symmetric passes:

- Alice drives a DBSCAN over *her* points in which every region query
  combines a local query (``seedsA``) with a secure query against Bob's
  freshly permuted points (``seedsB``, via Protocol HDP, steps 3/13 of
  Algorithm 4); the density test uses ``|seedsA| + |seedsB|`` but
  expansion proceeds through ``seedsA`` only.
- Bob then drives the symmetric pass over his points.

Each party ends with cluster numbers for its own records; the two
numberings are independent (see DESIGN.md Section 2, item 1 -- this is
what the published algorithm computes, *not* centralized DBSCAN, and the
plaintext model of it lives in
:func:`repro.clustering.union_density.union_density_dbscan`).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.clustering.labels import (
    NOISE,
    UNCLASSIFIED,
    ClusterLabels,
    next_cluster_id,
)
from repro.clustering.neighborhoods import make_index
from repro.core.config import ProtocolConfig
from repro.core.distance import (
    PeerCipherCache,
    hdp_region_query,
    hdp_region_query_cached,
    hdp_within_eps,
    hdp_within_eps_cached,
)
from repro.core.leakage import Disclosure, LeakageLedger
from repro.data.partitioning import HorizontalPartition
from repro.data.quantize import squared_distance_bound
from repro.net.channel import Channel
from repro.net.party import Party, make_party_pair
from repro.smc.permutation import PermutedView
from repro.smc.session import SmcSession, channel_for_config


@dataclass(frozen=True)
class HorizontalRunResult:
    """Output of a horizontal protocol run.

    Attributes:
        alice_labels / bob_labels: each party's cluster numbering over
            its own points.
        ledger: disclosure accounting for the whole run.
        stats: communication statistics snapshot (bytes, messages).
        comparisons: secure-comparison invocations across both passes.
    """

    alice_labels: tuple[int, ...]
    bob_labels: tuple[int, ...]
    ledger: LeakageLedger
    stats: dict
    comparisons: int


def run_horizontal_dbscan(partition: HorizontalPartition,
                          config: ProtocolConfig,
                          *, channel: Channel | None = None,
                          session: SmcSession | None = None,
                          ) -> HorizontalRunResult:
    """Run Algorithms 3 + 4 over a horizontal partition.

    A pre-built ``session`` may be supplied so callers can run the
    offline phase (``session.precompute_pools``) outside whatever they
    are timing; otherwise channel, parties, and session are created here.
    """
    if session is None:
        channel = (channel if channel is not None
                   else channel_for_config(config.smc))
        alice, bob = make_party_pair(channel, config.alice_seed,
                                     config.bob_seed)
        session = SmcSession(alice, bob, config.smc)
    elif channel is not None:
        raise ValueError("pass either channel or session, not both")
    else:
        alice, bob = session.alice, session.bob
    ledger = LeakageLedger()

    value_bound = squared_distance_bound(partition.alice_points,
                                         partition.bob_points)

    alice_labels = _party_pass(
        session, driver=alice, driver_points=list(partition.alice_points),
        peer=bob, peer_points=list(partition.bob_points),
        config=config, value_bound=value_bound, ledger=ledger,
        label="horizontal/alice_pass",
        cache=PeerCipherCache() if config.cache_peer_ciphertexts else None)
    bob_labels = _party_pass(
        session, driver=bob, driver_points=list(partition.bob_points),
        peer=alice, peer_points=list(partition.alice_points),
        config=config, value_bound=value_bound, ledger=ledger,
        label="horizontal/bob_pass",
        cache=PeerCipherCache() if config.cache_peer_ciphertexts else None)

    return HorizontalRunResult(
        alice_labels=alice_labels.as_tuple(),
        bob_labels=bob_labels.as_tuple(),
        ledger=ledger,
        stats=alice.endpoint.stats.snapshot(),
        comparisons=session.comparison_backend.invocations,
    )


def _party_pass(session: SmcSession, *, driver: Party,
                driver_points: list[tuple[int, ...]], peer: Party,
                peer_points: list[tuple[int, ...]], config: ProtocolConfig,
                value_bound: int, ledger: LeakageLedger, label: str,
                cache: PeerCipherCache | None = None) -> ClusterLabels:
    """Algorithm 3 for one driving party."""
    labels = ClusterLabels(len(driver_points))
    index = make_index(driver_points, config.eps_squared,
                       use_grid=config.use_grid_index)
    cluster_id = next_cluster_id(NOISE)
    for point_index in range(len(driver_points)):
        if labels.is_unclassified(point_index):
            if _expand_cluster(session, driver=driver, index=index,
                               labels=labels, point_index=point_index,
                               cluster_id=cluster_id, peer=peer,
                               peer_points=peer_points, config=config,
                               value_bound=value_bound, ledger=ledger,
                               label=label, cache=cache):
                cluster_id = next_cluster_id(cluster_id)
    return labels


def _expand_cluster(session: SmcSession, *, driver: Party,
                    index, labels: ClusterLabels,
                    point_index: int, cluster_id: int, peer: Party,
                    peer_points: list[tuple[int, ...]],
                    config: ProtocolConfig, value_bound: int,
                    ledger: LeakageLedger, label: str,
                    cache: PeerCipherCache | None = None) -> bool:
    """Algorithm 4 (ExpandCluster) for the driving party."""
    eps_squared = config.eps_squared
    seeds = index.region_query(index.points[point_index], eps_squared)
    peer_count = _secure_peer_neighbor_count(
        session, driver, index.points[point_index], peer, peer_points,
        eps_squared, value_bound, config, ledger, label=label, cache=cache)

    if len(seeds) + peer_count < config.min_pts:
        labels.change_cluster_id(point_index, NOISE)
        return False

    labels.change_cluster_ids(seeds, cluster_id)
    queue = deque(s for s in seeds if s != point_index)
    while queue:
        current = queue.popleft()
        result = index.region_query(index.points[current], eps_squared)
        peer_count = _secure_peer_neighbor_count(
            session, driver, index.points[current], peer, peer_points,
            eps_squared, value_bound, config, ledger, label=label,
            cache=cache)
        if len(result) + peer_count >= config.min_pts:
            for neighbor in result:
                if labels[neighbor] in (UNCLASSIFIED, NOISE):
                    if labels[neighbor] == UNCLASSIFIED:
                        queue.append(neighbor)
                    labels.change_cluster_id(neighbor, cluster_id)
    return True


def _secure_peer_neighbor_count(session: SmcSession, driver: Party,
                                query_point: tuple[int, ...], peer: Party,
                                peer_points: list[tuple[int, ...]],
                                eps_squared: int, value_bound: int,
                                config: ProtocolConfig,
                                ledger: LeakageLedger, *, label: str,
                                cache: PeerCipherCache | None = None) -> int:
    """Steps 3/13 of Algorithm 4: ``|seedsB|`` via HDP over a permutation.

    The peer presents its points in a fresh random order for every query
    (``SetOfPointsOfBobPermutation``), so the driver's per-point bits are
    unlinkable across queries; the count is the base protocol's
    Theorem 9 disclosure, recorded in the ledger.

    With a :class:`PeerCipherCache` (``cache_peer_ciphertexts=True``),
    the peer's encrypted coordinates travel once per point per pass and
    the permutation is dropped -- stable ids make it pointless.  The
    ledger then records the linkable hits.

    With ``batched_region_queries`` (the default) the whole query runs
    as one batched HDP -- same bits, same ledger records, one cross-term
    round-trip; the per-point loops below reproduce the seed-era
    behaviour for ablations.
    """
    if not peer_points:
        return 0
    if config.batched_region_queries:
        if cache is not None:
            bits = hdp_region_query_cached(
                session, driver, query_point, peer, peer_points,
                list(range(len(peer_points))), cache, eps_squared,
                value_bound, ledger=ledger,
                blind_cross_sum=config.blind_cross_sum,
                query_constant_blinding=config.query_constant_blinding,
                batched_comparisons=config.batched_comparisons,
                label=f"{label}/hdp_cached")
        else:
            bits = hdp_region_query(
                session, driver, query_point, peer, peer_points,
                eps_squared, value_bound, ledger=ledger,
                blind_cross_sum=config.blind_cross_sum,
                query_constant_blinding=config.query_constant_blinding,
                batched_comparisons=config.batched_comparisons,
                label=f"{label}/hdp")
        count = sum(bits)
    elif cache is not None:
        count = 0
        for point_id, peer_point in enumerate(peer_points):
            if hdp_within_eps_cached(
                    session, driver, query_point, peer, peer_point,
                    point_id, cache, eps_squared, value_bound,
                    ledger=ledger, blind_cross_sum=config.blind_cross_sum,
                    label=f"{label}/hdp_cached"):
                count += 1
    else:
        count = 0
        view = PermutedView.fresh(len(peer_points), peer.rng)
        for permuted_position in range(len(view)):
            peer_point = peer_points[view.true_index(permuted_position)]
            if hdp_within_eps(session, driver, query_point, peer,
                              peer_point, eps_squared, value_bound,
                              ledger=ledger,
                              blind_cross_sum=config.blind_cross_sum,
                              label=f"{label}/hdp"):
                count += 1
    ledger.record(label, driver.name, Disclosure.NEIGHBOR_COUNT,
                  detail=f"peer neighbourhood size {count}")
    return count
