"""Machine-checkable disclosure accounting.

Theorems 9, 10 and 11 each name precisely what their protocol reveals
beyond the output ("...revealing the number of points from the other
party in the neighborhood of this point").  The :class:`LeakageLedger`
turns those clauses into data: every protocol appends an event whenever
a party learns something derived from the other party's data, and
experiment E7 compares the resulting profiles across protocol variants
(including the Kumar-style linkable baseline the Figure 1 attack needs).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from enum import Enum


class Disclosure(Enum):
    """Classes of information a party can learn during a run."""

    NEIGHBOR_BIT = "neighbor_bit"
    """One unlinkable 'a peer point is within Eps of this query' bit."""

    NEIGHBOR_COUNT = "neighbor_count"
    """The count of the peer's points inside a query neighbourhood
    (Theorem 9's disclosure)."""

    LINKED_NEIGHBOR_ID = "linked_neighbor_id"
    """A *linkable* peer-point identity inside a neighbourhood -- the
    Kumar-style disclosure that enables the Figure 1 attack."""

    DOT_PRODUCT = "dot_product"
    """The exact cross dot product the zero-sum HDP masks hand the
    non-querying party (a write-up gap the ledger makes visible)."""

    DOT_DIFFERENCE = "dot_difference"
    """The differences between one region query's cross dot products,
    handed to the non-querying party when blinding uses a
    query-constant offset (``query_constant_blinding``): every cross
    sum of the query is shifted by the same unknown value, so their
    pairwise differences are exact.  Strictly less than DOT_PRODUCT
    (the common shift stays hidden), strictly more than per-point
    blinding (which reveals nothing relative)."""

    ORDER_BIT = "order_bit"
    """One masked-distance order bit from the Section 5 selection."""

    CORE_BIT = "core_bit"
    """Theorem 11's disclosure: whether the peer holds at least
    k = MinPts - |own neighbours| points within Eps."""

    CLUSTER_OUTPUT = "cluster_output"
    """The protocol's intended output (cluster numbers)."""


@dataclass(frozen=True)
class LeakageEvent:
    """One disclosure: who learned what, during which protocol phase."""

    protocol: str
    learner: str
    disclosure: Disclosure
    detail: str = ""


@dataclass
class LeakageLedger:
    """Append-only record of disclosures for one protocol run."""

    events: list[LeakageEvent] = field(default_factory=list)

    def record(self, protocol: str, learner: str, disclosure: Disclosure,
               detail: str = "") -> None:
        self.events.append(LeakageEvent(protocol=protocol, learner=learner,
                                        disclosure=disclosure, detail=detail))

    def count(self, disclosure: Disclosure,
              learner: str | None = None) -> int:
        return sum(
            1 for event in self.events
            if event.disclosure is disclosure
            and (learner is None or event.learner == learner)
        )

    def profile(self) -> dict[str, int]:
        """Disclosure-kind -> event-count summary (the E7 table rows)."""
        counter = Counter(event.disclosure.value for event in self.events)
        return dict(counter)

    def learners(self) -> set[str]:
        return {event.learner for event in self.events}

    def extend(self, other: "LeakageLedger") -> None:
        self.events.extend(other.events)
