"""Secure k-th order statistic over additively shared values (Section 5).

The driving party holds ``u_i``, the peer holds ``v_i``, the hidden
values are ``d_i = u_i - v_i``.  Whether ``d_i <= d_j`` reduces to a
secure comparison of ``u_i - u_j`` (driver) against ``v_i - v_j``
(peer) -- the paper's ``(v1 - v2) - (u1 - u2) > 0`` test -- so selection
needs nothing beyond the comparison backend.

The paper sketches two selection algorithms and we implement both:

- :func:`kth_smallest_scan` -- k passes of minimum finding, ``O(k*n)``
  comparisons, "appropriate when k is small";
- :func:`kth_smallest_quickselect` -- the "quick sorted based algorithm"
  with expected ``O(n)`` comparisons and worst case ``O(n^2)``.

Both return the *index* of a k-th smallest element (1-based rank), known
to the driving party only.  Experiment E8 benchmarks their comparison
counts against each other.
"""

from __future__ import annotations

import random

from repro.net.party import Party
from repro.smc.comparison import SecureComparison
from repro.smc.secret_sharing import SharedValues


class SelectionError(ValueError):
    """Raised for out-of-range ranks."""


def _shared_leq(backend: SecureComparison, u_party: Party, v_party: Party,
                shares: SharedValues, i: int, j: int, *,
                label: str) -> bool:
    """Decide ``d_i <= d_j`` revealing only the bit, to the u-holder.

    ``d_i <= d_j  <=>  u_i - u_j <= v_i - v_j`` with the left side known
    to the u-holder and the right to the v-holder.
    """
    lo, hi = shares.difference_interval()
    outcome = backend.leq(
        u_party, shares.u_values[i] - shares.u_values[j],
        v_party, shares.v_values[i] - shares.v_values[j],
        lo=lo, hi=hi, reveal_to="a", label=label)
    return outcome.result


def kth_smallest_scan(backend: SecureComparison, u_party: Party,
                      v_party: Party, shares: SharedValues, k: int, *,
                      label: str = "kselect") -> int:
    """k rounds of secure minimum finding; ``O(k*n)`` comparisons.

    Returns the index (into the share vectors) of the k-th smallest
    hidden value; the u-holder learns this index and the comparison bits
    along the way, the v-holder learns nothing.
    """
    size = len(shares)
    if not 1 <= k <= size:
        raise SelectionError(f"rank k={k} outside [1, {size}]")
    remaining = list(range(size))
    smallest = remaining[0]
    for round_number in range(k):
        smallest = remaining[0]
        for candidate in remaining[1:]:
            candidate_leq = _shared_leq(
                backend, u_party, v_party, shares, candidate, smallest,
                label=f"{label}/scan{round_number}")
            if candidate_leq:
                smallest = candidate
        remaining.remove(smallest)
    return smallest


def kth_smallest_quickselect(backend: SecureComparison, u_party: Party,
                             v_party: Party, shares: SharedValues,
                             k: int, *, rng: random.Random | None = None,
                             label: str = "kselect") -> int:
    """Randomized quickselect; expected ``O(n)`` comparisons.

    Pivots are drawn from the u-holder's randomness (they drive the
    selection); partition comparisons reveal to them only pivot-relative
    order bits, the same class of disclosure as the scan variant.
    """
    size = len(shares)
    if not 1 <= k <= size:
        raise SelectionError(f"rank k={k} outside [1, {size}]")
    rng = rng if rng is not None else u_party.rng
    candidates = list(range(size))
    rank = k
    depth = 0
    while True:
        if len(candidates) == 1:
            return candidates[0]
        pivot = candidates[rng.randrange(len(candidates))]
        not_greater = []
        greater = []
        for index in candidates:
            if index == pivot:
                continue
            if _shared_leq(backend, u_party, v_party, shares, index, pivot,
                           label=f"{label}/qs{depth}"):
                not_greater.append(index)
            else:
                greater.append(index)
        depth += 1
        if rank <= len(not_greater):
            candidates = not_greater
        elif rank == len(not_greater) + 1:
            return pivot
        else:
            rank -= len(not_greater) + 1
            candidates = greater
