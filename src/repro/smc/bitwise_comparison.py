"""DGK-style bitwise secure comparison over Paillier.

This is the large-domain substitute for YMPP (see DESIGN.md,
Substitutions).  YMPP transfers ``n0`` numbers per comparison, which is
infeasible when the compared values are fixed-point squared distances
living in a 2^40-sized domain; this protocol computes the identical
one-sided functionality with ``O(log n0)`` ciphertexts, following the
blueprint of Damgard-Geisler-Kroigaard (DGK 2007) instantiated on the
same Paillier cryptosystem the rest of the paper uses.

Functionality: the *key holder* has private ``x``, the *other party* has
private ``y``, both ``bits``-bit non-negative integers.  The key holder
learns whether ``x > y``; the other party learns nothing.

Protocol:

1. Key holder sends ``E(x_t)`` for each bit ``x_t`` (MSB first).
2. For each position ``t`` the other party homomorphically computes
   ``E(c_t)`` with ``c_t = x_t - y_t - 1 + 3 * w_t`` where
   ``w_t = sum_{s<t} (x_s XOR y_s)`` counts disagreeing higher bits;
   ``c_t = 0`` iff position ``t`` witnesses ``x > y`` (``x_t=1, y_t=0``,
   all higher bits equal).
3. The other party blinds each ``E(c_t)`` with a random multiplier,
   rerandomizes, shuffles, and returns the batch.
4. The key holder decrypts: some plaintext is 0  <=>  ``x > y``.

Amortized batches: :func:`dgk_greater_than_batch` compares one
key-holder value ``x`` against many other-party values ``y_1..y_k`` in a
single round-trip.  Step 1 runs **once** -- the key holder's bit
ciphertexts are shared by every comparison of the batch, which is sound
because they are semantically secure and carry no per-``y`` state --
while steps 2-3 run per ``y_i`` exactly as in the per-point protocol
(independent blinding multipliers, independent rerandomization, an
independent shuffle per point), and step 4 decrypts all witness batches
in one engine sweep.  The predicate bits are bit-identical to ``k``
per-point runs; only the key holder's encryption count (``bits`` instead
of ``k * bits``) and the message count (2 instead of ``2k``) change.
"""

from __future__ import annotations

from repro.crypto.engine import ModexpEngine, default_engine
from repro.crypto.paillier import PaillierCiphertext, PaillierKeyPair
from repro.crypto.precompute import RandomnessPool
from repro.net.party import Party

# Blinding multipliers are drawn from [1, 2^_BLIND_BITS); they keep
# c_t * r_t nonzero mod n (|c_t| is tiny and n is cryptographic) while
# hiding the magnitude of nonzero c_t.
_BLIND_BITS = 40


class BitwiseComparisonError(ValueError):
    """Raised on out-of-domain inputs."""


def _check_domain(name: str, value: int, bits: int) -> None:
    if not 0 <= value < (1 << bits):
        raise BitwiseComparisonError(f"{name}={value} outside [0, 2^{bits})")


def _blinded_witnesses(public, received, y_bits, rng, pool) -> list[int]:
    """Steps 2-3 for one ``y``: blinded, shuffled witness ciphertexts.

    ``received`` are the key holder's bit ciphertexts (MSB first).  Runs
    the other party's RNG in exactly the per-point order (one multiplier
    and one rerandomization per bit, then one shuffle), so batched and
    per-point executions draw identical randomness for this half.
    """
    one = public.raw_encrypt_constant(1)
    blinded: list[int] = []
    # running_w accumulates E(sum of XORs of strictly-higher bit positions).
    running_w = PaillierCiphertext(public, public.raw_encrypt_constant(0))
    for enc_x_bit, y_bit in zip(received, y_bits):
        # c_t = x_t - y_t - 1 + 3 * w_t, all under encryption.
        c = enc_x_bit + (-y_bit - 1) + running_w * 3
        multiplier = rng.randrange(1, 1 << _BLIND_BITS)
        masked = (c * multiplier).rerandomize(rng, pool)
        blinded.append(masked.value)
        # XOR under encryption: x ^ y = x when y=0, 1 - x when y=1.
        if y_bit == 0:
            xor_term = enc_x_bit
        else:
            xor_term = PaillierCiphertext(public, one) - enc_x_bit
        running_w = running_w + xor_term
    rng.shuffle(blinded)
    return blinded


def dgk_greater_than(key_holder: Party, x: int, other: Party, y: int,
                     bits: int, keypair: PaillierKeyPair, *,
                     label: str = "dgk",
                     key_holder_pool: RandomnessPool | None = None,
                     other_pool: RandomnessPool | None = None,
                     engine: ModexpEngine | None = None) -> bool:
    """Decide ``x > y``; only ``key_holder`` (who owns ``keypair``) learns it.

    Args:
        key_holder: party holding ``x`` and the Paillier private key.
        x: key holder's value, in ``[0, 2^bits)``.
        other: party holding ``y``.
        y: other party's value, in ``[0, 2^bits)``.
        bits: public bit-width of the compared domain.
        keypair: key holder's Paillier keys; the public half is assumed
            already known to ``other`` (session exchanges it once).
        label: transcript label prefix.
        key_holder_pool / other_pool: optional pregenerated randomness
            for each party's encryptions under the key holder's key --
            the bit-encryption and blinding loops are the protocols'
            hottest powmod sites, and pools turn each into a mulmod.
        engine: optional :class:`~repro.crypto.engine.ModexpEngine`
            executing the bit-encryption batch and the witness
            decryption as sharded modexp jobs (bit-identical results;
            serial when omitted).
    """
    if bits < 1:
        raise BitwiseComparisonError(f"bits must be >= 1, got {bits}")
    _check_domain("x", x, bits)
    _check_domain("y", y, bits)

    public = keypair.public_key
    engine = engine or default_engine()

    # --- Step 1 (key holder): encrypt bits of x, MSB first. ---------------
    x_bits = [(x >> (bits - 1 - t)) & 1 for t in range(bits)]
    encrypted_bits = engine.encrypt_batch(public, x_bits, key_holder.rng,
                                          key_holder_pool)
    key_holder.send(f"{label}/x_bits", [c.value for c in encrypted_bits])

    # --- Steps 2-3 (other party): blinded witness ciphertexts. ------------
    received_values = other.receive(f"{label}/x_bits")
    received = [PaillierCiphertext(public, v) for v in received_values]
    y_bits = [(y >> (bits - 1 - t)) & 1 for t in range(bits)]
    blinded = _blinded_witnesses(public, received, y_bits, other.rng,
                                 other_pool)
    other.send(f"{label}/witnesses", blinded)

    # --- Step 4 (key holder): decrypt, look for a zero. --------------------
    witnesses = key_holder.receive(f"{label}/witnesses")
    plaintexts = engine.decrypt_raw_batch(keypair.private_key, witnesses)
    return any(value == 0 for value in plaintexts)


def dgk_greater_than_batch(key_holder: Party, x: int, other: Party,
                           ys: list[int], bits: int,
                           keypair: PaillierKeyPair, *,
                           label: str = "dgk",
                           key_holder_pool: RandomnessPool | None = None,
                           other_pool: RandomnessPool | None = None,
                           engine: ModexpEngine | None = None) -> list[bool]:
    """Decide ``x > y_i`` for every ``y_i``; only ``key_holder`` learns them.

    The amortized form of :func:`dgk_greater_than`: the key holder's bit
    ciphertexts are produced once and shared by every comparison, the
    other party evaluates one independently blinded and shuffled witness
    batch per ``y_i`` against them, and all witness batches travel (and
    decrypt) together.  One message in each direction regardless of
    ``len(ys)``; predicate bits identical to ``len(ys)`` per-point runs.
    """
    if bits < 1:
        raise BitwiseComparisonError(f"bits must be >= 1, got {bits}")
    _check_domain("x", x, bits)
    for y in ys:
        _check_domain("y", y, bits)
    if not ys:
        return []

    public = keypair.public_key
    engine = engine or default_engine()

    # --- Step 1 (key holder), once for the whole batch. --------------------
    x_bits = [(x >> (bits - 1 - t)) & 1 for t in range(bits)]
    encrypted_bits = engine.encrypt_batch(public, x_bits, key_holder.rng,
                                          key_holder_pool)
    key_holder.send(f"{label}/x_bits", [c.value for c in encrypted_bits])

    # --- Steps 2-3 (other party), per y, against the shared bits. ----------
    received_values = other.receive(f"{label}/x_bits")
    received = [PaillierCiphertext(public, v) for v in received_values]
    batches = []
    for y in ys:
        y_bits = [(y >> (bits - 1 - t)) & 1 for t in range(bits)]
        batches.append(_blinded_witnesses(public, received, y_bits,
                                          other.rng, other_pool))
    other.send(f"{label}/witnesses", batches)

    # --- Step 4 (key holder): one decryption sweep over every batch. -------
    witness_batches = key_holder.receive(f"{label}/witnesses")
    flat = [value for batch in witness_batches for value in batch]
    plaintexts = engine.decrypt_raw_batch(keypair.private_key, flat)
    results = []
    for index in range(len(witness_batches)):
        group = plaintexts[index * bits:(index + 1) * bits]
        results.append(any(value == 0 for value in group))
    return results
