"""Secure comparison backends behind one ``a <= b`` interface.

The DBSCAN protocols only ever need one predicate: *"decide whether
``a <= b`` where one party holds ``a``, the other holds ``b``, both lie
in a public interval, and a designated party (or both) learns the
answer"*.  Three interchangeable backends provide it:

- :class:`YaoMillionairesComparison` -- the paper's Algorithm 1, literal,
  ``O(n0)`` communication; practical for small public domains.
- :class:`BitwiseComparison` -- DGK-style, ``O(log n0)`` communication;
  the default for fixed-point distance domains (see DESIGN.md,
  Substitutions).
- :class:`OracleComparison` -- the ideal functionality: a trusted third
  party that sends nothing.  Zero communication and zero crypto, used to
  (a) run fast functional tests of the clustering layers and (b) serve as
  the ideal world that the simulation-paradigm tests compare against.

Strict/loose mapping: all backends reduce ``a <= b`` to the primitive
each protocol natively offers (YMPP decides ``i < j``; DGK decides
``x > y``) using the integer identity ``a <= b  <=>  a < b + 1`` so no
backend ever mis-handles ties.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from dataclasses import dataclass

from repro.crypto.engine import ModexpEngine
from repro.crypto.paillier import PaillierKeyPair
from repro.crypto.rsa import RsaKeyPair
from repro.net.party import Party
from repro.smc.bitwise_comparison import (
    dgk_greater_than,
    dgk_greater_than_batch,
)
from repro.smc.millionaires import ympp_less_than


class ComparisonError(ValueError):
    """Raised for out-of-interval inputs or invalid reveal targets."""


_REVEAL_TARGETS = ("a", "b", "both")


def _check_reveal_and_interval(reveal_to: str, lo: int, hi: int) -> None:
    if reveal_to not in _REVEAL_TARGETS:
        raise ComparisonError(f"reveal_to must be one of {_REVEAL_TARGETS}")
    if hi < lo:
        raise ComparisonError(f"empty interval [{lo}, {hi}]")


def _check_in_interval(name: str, value: int, lo: int, hi: int) -> None:
    if not lo <= value <= hi:
        raise ComparisonError(f"{name}={value} outside [{lo}, {hi}]")


def _revealed(reveal_to: str, a_party: Party,
              b_party: Party) -> tuple[str, ...]:
    if reveal_to == "both":
        return (a_party.name, b_party.name)
    return (a_party.name if reveal_to == "a" else b_party.name,)


@dataclass
class ComparisonOutcome:
    """Result of one comparison plus who learned it (for the ledger)."""

    result: bool
    revealed_to: tuple[str, ...]


class SecureComparison(ABC):
    """Backend interface: decide ``a <= b`` over a public interval.

    Subclasses count invocations (``self.invocations``) so benchmarks can
    report secure-comparison counts (experiment E8) without touching
    protocol internals.
    """

    name: str = "abstract"

    def __init__(self):
        self.invocations = 0

    def leq(self, a_party: Party, a: int, b_party: Party, b: int, *,
            lo: int, hi: int, reveal_to: str = "both",
            label: str = "cmp") -> ComparisonOutcome:
        """Decide ``a <= b``; ``a, b`` must lie in ``[lo, hi]``.

        Args:
            a_party: holder of ``a``.
            b_party: holder of ``b``.
            lo, hi: public interval bounds (inclusive).
            reveal_to: ``"a"``, ``"b"``, or ``"both"`` -- which party may
                learn the predicate.  When ``"both"``, the learning party
                sends one conclusion bit to the peer (counted).
            label: transcript label prefix.
        """
        _check_reveal_and_interval(reveal_to, lo, hi)
        _check_in_interval("a", a, lo, hi)
        _check_in_interval("b", b, lo, hi)
        self.invocations += 1
        result = self._leq(a_party, a - lo, b_party, b - lo,
                           domain=hi - lo, reveal_to=reveal_to,
                           label=f"{label}/{self.name}")
        return ComparisonOutcome(result=result,
                                 revealed_to=_revealed(reveal_to, a_party,
                                                       b_party))

    def leq_batch(self, a_party: Party, a_values: list[int], b_party: Party,
                  b_values: list[int], *, lo: int, hi: int,
                  reveal_to: str = "both", amortize: bool = False,
                  label: str = "cmp") -> list[ComparisonOutcome]:
        """Decide ``a_i <= b_i`` for every pair; semantics of one
        :meth:`leq` per pair.

        Every item is interval-checked exactly as :meth:`leq` checks its
        scalar inputs, each pair counts as one invocation (the E8
        secure-comparison count is the number of predicates evaluated,
        not the number of message round-trips), and the reveal target
        applies to every item.

        ``amortize`` is the caller's declaration that the *learning
        party's* value -- the DGK key-holder side, i.e. the ``a`` values
        when ``reveal_to`` is ``"a"``/``"both"``, the ``b`` values when
        ``"b"`` -- is constant across the batch **as a matter of public
        protocol structure** (e.g. a region query compares every peer
        point against one threshold).  Backends with a native batch
        protocol then share a single bit-encryption and round-trip for
        the whole batch; the declaration is validated and a mismatch
        raises before anything crosses the wire.  Without the
        declaration every backend runs one :meth:`_leq` per pair --
        identical messages to a caller-side loop.  The amortization
        decision is deliberately *never inferred* by comparing the
        private values themselves: message shapes would then depend on
        secret-value collisions, an equality side channel the
        per-point protocol does not have.
        """
        _check_reveal_and_interval(reveal_to, lo, hi)
        if len(a_values) != len(b_values):
            raise ComparisonError(
                f"{len(a_values)} a-values but {len(b_values)} b-values")
        for a in a_values:
            _check_in_interval("a", a, lo, hi)
        for b in b_values:
            _check_in_interval("b", b, lo, hi)
        if not a_values:
            return []
        if amortize:
            key_side = a_values if reveal_to in ("a", "both") else b_values
            if any(value != key_side[0] for value in key_side):
                raise ComparisonError(
                    "amortize=True declares a constant key-holder side, "
                    "but the values differ")
        self.invocations += len(a_values)
        results = self._leq_batch(
            a_party, [a - lo for a in a_values],
            b_party, [b - lo for b in b_values],
            domain=hi - lo, reveal_to=reveal_to, amortize=amortize,
            label=f"{label}/{self.name}")
        revealed = _revealed(reveal_to, a_party, b_party)
        return [ComparisonOutcome(result=result, revealed_to=revealed)
                for result in results]

    @abstractmethod
    def _leq(self, a_party: Party, a: int, b_party: Party, b: int, *,
             domain: int, reveal_to: str, label: str) -> bool:
        """Decide ``a <= b`` for shifted inputs in ``[0, domain]``."""

    def _leq_batch(self, a_party: Party, a_values: list[int], b_party: Party,
                   b_values: list[int], *, domain: int, reveal_to: str,
                   amortize: bool, label: str) -> list[bool]:
        """Serial fallback: one :meth:`_leq` per pair (YMPP, oracle)."""
        return [self._leq(a_party, a, b_party, b, domain=domain,
                          reveal_to=reveal_to, label=label)
                for a, b in zip(a_values, b_values)]


class YaoMillionairesComparison(SecureComparison):
    """Algorithm 1 as the comparison backend.

    Input mapping: values are shifted to ``[1, n0]`` with
    ``n0 = domain + 2`` (one slot of headroom for the ``b + 1`` strict-to-
    loose trick).  The party that must learn the result plays the
    j-holder role (Algorithm 1's Bob); the peer runs Algorithm 1's Alice
    under **its own** RSA keypair, looked up by party identity -- never
    by which argument slot the caller happened to pass the party in.
    """

    name = "ympp"

    def __init__(self, keys_by_party: dict[str, RsaKeyPair],
                 engine: ModexpEngine | None = None):
        super().__init__()
        self._keys = dict(keys_by_party)
        self._engine = engine

    def _keys_of(self, party: Party) -> RsaKeyPair:
        try:
            return self._keys[party.name]
        except KeyError:
            raise ComparisonError(
                f"no RSA key material registered for party {party.name!r}")

    def _leq(self, a_party: Party, a: int, b_party: Party, b: int, *,
             domain: int, reveal_to: str, label: str) -> bool:
        n0 = domain + 2
        if reveal_to in ("a", "both"):
            # a-holder learns: run with i = b, j = a (the i-holder --
            # b_party -- owns the keypair), so the j-holder (a-holder)
            # learns b < a, and a <= b  <=>  not (b < a).
            strictly_greater = ympp_less_than(
                b_party, b + 1, a_party, a + 1, n0,
                self._keys_of(b_party), announce=(reveal_to == "both"),
                label=f"{label}/b_lt_a", engine=self._engine)
            return not strictly_greater
        # b-holder learns: i = a, j = b + 1 -> j-holder learns
        # a < b + 1 <=> a <= b.
        return ympp_less_than(
            a_party, a + 1, b_party, b + 2, n0,
            self._keys_of(a_party), announce=False, label=f"{label}/a_le_b",
            engine=self._engine)


class BitwiseComparison(SecureComparison):
    """DGK-style backend; the key holder is the learning party.

    Key material is looked up by *party identity*: whichever party plays
    the DGK key holder runs under its own Paillier keypair, regardless
    of which argument slot it arrived in (the seed-era code bound keys
    to the ``a``/``b`` roles, so passing ``a_party=bob`` ran DGK under
    alice's keypair -- functionally correct in-process, wrong key
    ownership for any real network deployment).

    ``pool_lookup(actor_name, owner_name)`` optionally resolves a
    :class:`~repro.crypto.precompute.RandomnessPool` for the named party
    encrypting under the named key owner's key; the session wires its
    per-(actor, key) pools through here so DGK's bit-encryption and
    blinding loops run on pregenerated randomness.  ``engine`` routes
    the bit-encryption batch and witness decryption through a
    :class:`~repro.crypto.engine.ModexpEngine`.
    """

    name = "bitwise"

    def __init__(self, keys_by_party: dict[str, PaillierKeyPair],
                 pool_lookup=None, engine: ModexpEngine | None = None):
        super().__init__()
        self._keys = dict(keys_by_party)
        self._pools = pool_lookup or (lambda actor_name, owner_name: None)
        self._engine = engine

    def _keys_of(self, party: Party) -> PaillierKeyPair:
        try:
            return self._keys[party.name]
        except KeyError:
            raise ComparisonError(
                f"no Paillier key material registered for party "
                f"{party.name!r}")

    def _leq(self, a_party: Party, a: int, b_party: Party, b: int, *,
             domain: int, reveal_to: str, label: str) -> bool:
        # Width covers domain + 1 so the b + 1 trick cannot overflow.
        bits = max(1, (domain + 1).bit_length())
        if reveal_to in ("a", "both"):
            # a-holder keyed, learns a > b; a <= b is the negation.
            greater = dgk_greater_than(
                a_party, a, b_party, b, bits, self._keys_of(a_party),
                label=label,
                key_holder_pool=self._pools(a_party.name, a_party.name),
                other_pool=self._pools(b_party.name, a_party.name),
                engine=self._engine)
            result = not greater
            if reveal_to == "both":
                a_party.send(f"{label}/conclusion", result)
                return b_party.receive(f"{label}/conclusion")
            return result
        # b-holder keyed, learns b + 1 > a  <=>  a <= b.
        return dgk_greater_than(
            b_party, b + 1, a_party, a, bits, self._keys_of(b_party),
            label=label,
            key_holder_pool=self._pools(b_party.name, b_party.name),
            other_pool=self._pools(a_party.name, b_party.name),
            engine=self._engine)

    def _leq_batch(self, a_party: Party, a_values: list[int], b_party: Party,
                   b_values: list[int], *, domain: int, reveal_to: str,
                   amortize: bool, label: str) -> list[bool]:
        """Amortized DGK: one bit-encryption for a declared-constant side.

        Only when the caller *declared* (``amortize=True``, validated in
        :meth:`SecureComparison.leq_batch`) that the key holder's value
        (``a`` when the a-holder learns, ``b + 1`` when the b-holder
        learns) is constant across the batch does the whole batch run as
        a single
        :func:`~repro.smc.bitwise_comparison.dgk_greater_than_batch`:
        one bit-encryption, one round-trip.  Undeclared batches fall
        back to the per-pair loop, so the message pattern is a pure
        function of the declaration -- never of private-value equality,
        which would leak key-holder-side collisions (e.g. equal
        ``blind_cross_sum`` offsets) to the evaluating party.
        Predicate bits are identical to the per-pair loop either way.
        """
        if not amortize:
            return super()._leq_batch(
                a_party, a_values, b_party, b_values, domain=domain,
                reveal_to=reveal_to, amortize=amortize, label=label)
        # Width covers domain + 1 so the b + 1 trick cannot overflow.
        bits = max(1, (domain + 1).bit_length())
        if reveal_to in ("a", "both"):
            key_party, other_party = a_party, b_party
            holder_value, other_values = a_values[0], b_values
        else:
            key_party, other_party = b_party, a_party
            holder_value, other_values = b_values[0] + 1, a_values
        greater = dgk_greater_than_batch(
            key_party, holder_value, other_party, other_values, bits,
            self._keys_of(key_party), label=f"{label}/batch",
            key_holder_pool=self._pools(key_party.name, key_party.name),
            other_pool=self._pools(other_party.name, key_party.name),
            engine=self._engine)
        if reveal_to == "b":
            # b-holder keyed, learns b + 1 > a  <=>  a <= b.
            return greater
        # a-holder keyed, learns a > b; a <= b is the negation.
        results = [not g for g in greater]
        if reveal_to == "both":
            a_party.send(f"{label}/batch/conclusion", results)
            results = b_party.receive(f"{label}/batch/conclusion")
        return results


class OracleComparison(SecureComparison):
    """Ideal functionality: a trusted third party, zero communication.

    Exists for fast functional testing of the clustering layers and as
    the ideal-world reference in simulation tests.  Never use where the
    privacy properties themselves are under test.
    """

    name = "oracle"

    def _leq(self, a_party: Party, a: int, b_party: Party, b: int, *,
             domain: int, reveal_to: str, label: str) -> bool:
        return a <= b


def make_comparison_backend(kind: str, *,
                            rsa_keys: dict[str, RsaKeyPair] | None = None,
                            paillier_keys: dict[str, PaillierKeyPair] | None
                            = None,
                            pool_lookup=None,
                            engine: ModexpEngine | None = None,
                            ) -> SecureComparison:
    """Factory used by :class:`repro.smc.session.SmcSession`.

    ``kind`` is one of ``"ympp"``, ``"bitwise"``, ``"oracle"``; the
    relevant key material must be supplied for the crypto backends as a
    ``{party_name: keypair}`` mapping -- keys follow party identity, not
    argument roles.  ``pool_lookup`` routes pregenerated Paillier
    randomness into the bitwise backend and ``engine`` routes its batch
    modexp work (see :class:`BitwiseComparison`).
    """
    if kind == "ympp":
        if not rsa_keys or len(rsa_keys) < 2:
            raise ComparisonError(
                "ympp backend requires an RSA keypair per party")
        return YaoMillionairesComparison(rsa_keys, engine=engine)
    if kind == "bitwise":
        if not paillier_keys or len(paillier_keys) < 2:
            raise ComparisonError(
                "bitwise backend requires a Paillier keypair per party")
        return BitwiseComparison(paillier_keys, pool_lookup=pool_lookup,
                                 engine=engine)
    if kind == "oracle":
        return OracleComparison()
    raise ComparisonError(f"unknown comparison backend {kind!r}")
