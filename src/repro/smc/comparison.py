"""Secure comparison backends behind one ``a <= b`` interface.

The DBSCAN protocols only ever need one predicate: *"decide whether
``a <= b`` where one party holds ``a``, the other holds ``b``, both lie
in a public interval, and a designated party (or both) learns the
answer"*.  Three interchangeable backends provide it:

- :class:`YaoMillionairesComparison` -- the paper's Algorithm 1, literal,
  ``O(n0)`` communication; practical for small public domains.
- :class:`BitwiseComparison` -- DGK-style, ``O(log n0)`` communication;
  the default for fixed-point distance domains (see DESIGN.md,
  Substitutions).
- :class:`OracleComparison` -- the ideal functionality: a trusted third
  party that sends nothing.  Zero communication and zero crypto, used to
  (a) run fast functional tests of the clustering layers and (b) serve as
  the ideal world that the simulation-paradigm tests compare against.

Strict/loose mapping: all backends reduce ``a <= b`` to the primitive
each protocol natively offers (YMPP decides ``i < j``; DGK decides
``x > y``) using the integer identity ``a <= b  <=>  a < b + 1`` so no
backend ever mis-handles ties.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from dataclasses import dataclass

from repro.crypto.engine import ModexpEngine
from repro.crypto.paillier import PaillierKeyPair
from repro.crypto.rsa import RsaKeyPair
from repro.net.party import Party
from repro.smc.bitwise_comparison import dgk_greater_than
from repro.smc.millionaires import ympp_less_than


class ComparisonError(ValueError):
    """Raised for out-of-interval inputs or invalid reveal targets."""


_REVEAL_TARGETS = ("a", "b", "both")


@dataclass
class ComparisonOutcome:
    """Result of one comparison plus who learned it (for the ledger)."""

    result: bool
    revealed_to: tuple[str, ...]


class SecureComparison(ABC):
    """Backend interface: decide ``a <= b`` over a public interval.

    Subclasses count invocations (``self.invocations``) so benchmarks can
    report secure-comparison counts (experiment E8) without touching
    protocol internals.
    """

    name: str = "abstract"

    def __init__(self):
        self.invocations = 0

    def leq(self, a_party: Party, a: int, b_party: Party, b: int, *,
            lo: int, hi: int, reveal_to: str = "both",
            label: str = "cmp") -> ComparisonOutcome:
        """Decide ``a <= b``; ``a, b`` must lie in ``[lo, hi]``.

        Args:
            a_party: holder of ``a``.
            b_party: holder of ``b``.
            lo, hi: public interval bounds (inclusive).
            reveal_to: ``"a"``, ``"b"``, or ``"both"`` -- which party may
                learn the predicate.  When ``"both"``, the learning party
                sends one conclusion bit to the peer (counted).
            label: transcript label prefix.
        """
        if reveal_to not in _REVEAL_TARGETS:
            raise ComparisonError(f"reveal_to must be one of {_REVEAL_TARGETS}")
        if hi < lo:
            raise ComparisonError(f"empty interval [{lo}, {hi}]")
        if not lo <= a <= hi:
            raise ComparisonError(f"a={a} outside [{lo}, {hi}]")
        if not lo <= b <= hi:
            raise ComparisonError(f"b={b} outside [{lo}, {hi}]")
        self.invocations += 1
        result = self._leq(a_party, a - lo, b_party, b - lo,
                           domain=hi - lo, reveal_to=reveal_to,
                           label=f"{label}/{self.name}")
        if reveal_to == "both":
            revealed: tuple[str, ...] = (a_party.name, b_party.name)
        else:
            revealed = (a_party.name if reveal_to == "a" else b_party.name,)
        return ComparisonOutcome(result=result, revealed_to=revealed)

    @abstractmethod
    def _leq(self, a_party: Party, a: int, b_party: Party, b: int, *,
             domain: int, reveal_to: str, label: str) -> bool:
        """Decide ``a <= b`` for shifted inputs in ``[0, domain]``."""


class YaoMillionairesComparison(SecureComparison):
    """Algorithm 1 as the comparison backend.

    Input mapping: values are shifted to ``[1, n0]`` with
    ``n0 = domain + 2`` (one slot of headroom for the ``b + 1`` strict-to-
    loose trick).  The party that must learn the result plays the
    j-holder role (Algorithm 1's Bob); the peer runs Algorithm 1's Alice
    under **its own** RSA keypair, looked up by party identity -- never
    by which argument slot the caller happened to pass the party in.
    """

    name = "ympp"

    def __init__(self, keys_by_party: dict[str, RsaKeyPair],
                 engine: ModexpEngine | None = None):
        super().__init__()
        self._keys = dict(keys_by_party)
        self._engine = engine

    def _keys_of(self, party: Party) -> RsaKeyPair:
        try:
            return self._keys[party.name]
        except KeyError:
            raise ComparisonError(
                f"no RSA key material registered for party {party.name!r}")

    def _leq(self, a_party: Party, a: int, b_party: Party, b: int, *,
             domain: int, reveal_to: str, label: str) -> bool:
        n0 = domain + 2
        if reveal_to in ("a", "both"):
            # a-holder learns: run with i = b, j = a (the i-holder --
            # b_party -- owns the keypair), so the j-holder (a-holder)
            # learns b < a, and a <= b  <=>  not (b < a).
            strictly_greater = ympp_less_than(
                b_party, b + 1, a_party, a + 1, n0,
                self._keys_of(b_party), announce=(reveal_to == "both"),
                label=f"{label}/b_lt_a", engine=self._engine)
            return not strictly_greater
        # b-holder learns: i = a, j = b + 1 -> j-holder learns
        # a < b + 1 <=> a <= b.
        return ympp_less_than(
            a_party, a + 1, b_party, b + 2, n0,
            self._keys_of(a_party), announce=False, label=f"{label}/a_le_b",
            engine=self._engine)


class BitwiseComparison(SecureComparison):
    """DGK-style backend; the key holder is the learning party.

    Key material is looked up by *party identity*: whichever party plays
    the DGK key holder runs under its own Paillier keypair, regardless
    of which argument slot it arrived in (the seed-era code bound keys
    to the ``a``/``b`` roles, so passing ``a_party=bob`` ran DGK under
    alice's keypair -- functionally correct in-process, wrong key
    ownership for any real network deployment).

    ``pool_lookup(actor_name, owner_name)`` optionally resolves a
    :class:`~repro.crypto.precompute.RandomnessPool` for the named party
    encrypting under the named key owner's key; the session wires its
    per-(actor, key) pools through here so DGK's bit-encryption and
    blinding loops run on pregenerated randomness.  ``engine`` routes
    the bit-encryption batch and witness decryption through a
    :class:`~repro.crypto.engine.ModexpEngine`.
    """

    name = "bitwise"

    def __init__(self, keys_by_party: dict[str, PaillierKeyPair],
                 pool_lookup=None, engine: ModexpEngine | None = None):
        super().__init__()
        self._keys = dict(keys_by_party)
        self._pools = pool_lookup or (lambda actor_name, owner_name: None)
        self._engine = engine

    def _keys_of(self, party: Party) -> PaillierKeyPair:
        try:
            return self._keys[party.name]
        except KeyError:
            raise ComparisonError(
                f"no Paillier key material registered for party "
                f"{party.name!r}")

    def _leq(self, a_party: Party, a: int, b_party: Party, b: int, *,
             domain: int, reveal_to: str, label: str) -> bool:
        # Width covers domain + 1 so the b + 1 trick cannot overflow.
        bits = max(1, (domain + 1).bit_length())
        if reveal_to in ("a", "both"):
            # a-holder keyed, learns a > b; a <= b is the negation.
            greater = dgk_greater_than(
                a_party, a, b_party, b, bits, self._keys_of(a_party),
                label=label,
                key_holder_pool=self._pools(a_party.name, a_party.name),
                other_pool=self._pools(b_party.name, a_party.name),
                engine=self._engine)
            result = not greater
            if reveal_to == "both":
                a_party.send(f"{label}/conclusion", result)
                return b_party.receive(f"{label}/conclusion")
            return result
        # b-holder keyed, learns b + 1 > a  <=>  a <= b.
        return dgk_greater_than(
            b_party, b + 1, a_party, a, bits, self._keys_of(b_party),
            label=label,
            key_holder_pool=self._pools(b_party.name, b_party.name),
            other_pool=self._pools(a_party.name, b_party.name),
            engine=self._engine)


class OracleComparison(SecureComparison):
    """Ideal functionality: a trusted third party, zero communication.

    Exists for fast functional testing of the clustering layers and as
    the ideal-world reference in simulation tests.  Never use where the
    privacy properties themselves are under test.
    """

    name = "oracle"

    def _leq(self, a_party: Party, a: int, b_party: Party, b: int, *,
             domain: int, reveal_to: str, label: str) -> bool:
        return a <= b


def make_comparison_backend(kind: str, *,
                            rsa_keys: dict[str, RsaKeyPair] | None = None,
                            paillier_keys: dict[str, PaillierKeyPair] | None
                            = None,
                            pool_lookup=None,
                            engine: ModexpEngine | None = None,
                            ) -> SecureComparison:
    """Factory used by :class:`repro.smc.session.SmcSession`.

    ``kind`` is one of ``"ympp"``, ``"bitwise"``, ``"oracle"``; the
    relevant key material must be supplied for the crypto backends as a
    ``{party_name: keypair}`` mapping -- keys follow party identity, not
    argument roles.  ``pool_lookup`` routes pregenerated Paillier
    randomness into the bitwise backend and ``engine`` routes its batch
    modexp work (see :class:`BitwiseComparison`).
    """
    if kind == "ympp":
        if not rsa_keys or len(rsa_keys) < 2:
            raise ComparisonError(
                "ympp backend requires an RSA keypair per party")
        return YaoMillionairesComparison(rsa_keys, engine=engine)
    if kind == "bitwise":
        if not paillier_keys or len(paillier_keys) < 2:
            raise ComparisonError(
                "bitwise backend requires a Paillier keypair per party")
        return BitwiseComparison(paillier_keys, pool_lookup=pool_lookup,
                                 engine=engine)
    if kind == "oracle":
        return OracleComparison()
    raise ComparisonError(f"unknown comparison backend {kind!r}")
