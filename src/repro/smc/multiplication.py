"""The paper's Multiplication Protocol (Section 4.1, Algorithm 2).

Functionality: the *receiver* ("Alice" in Algorithm 2) has private ``x``;
the *masker* ("Bob") has private ``y`` and chooses a private mask ``v``.
The receiver obtains ``u = x*y + v`` and nothing else; the masker obtains
nothing.  Correctness is the homomorphic identity

    D( E(x)^y * E(v) )  =  x*y + v   (mod n)

All values are signed integers carried through the half-range encoding;
overflow past ``n/2`` raises instead of silently wrapping.

Two fidelity modes:

- default: every encryption uses fresh private randomness (standard
  Paillier usage, semantically secure).
- ``faithful_shared_r=True``: reproduces Algorithm 2 literally, where
  step 2 has the parties "collaborate to select a random r" that is then
  *sent to the masker* along with ``E(x; r)``.  Sharing the encryption
  randomness lets the masker strip ``r^n`` and recover ``g^x``, enabling
  a brute-force of small plaintext domains -- a write-up defect the
  DESIGN.md documents.  The mode exists so the leakage experiment (E7)
  can demonstrate the defect; nothing else uses it.
"""

from __future__ import annotations

from repro.crypto.encoding import SignedEncoder
from repro.crypto.integer_math import cached_pow
from repro.crypto.paillier import PaillierCiphertext, PaillierKeyPair
from repro.crypto.precompute import RandomnessPool
from repro.crypto.sealed import decrypt_or_discard
from repro.net.party import Party


class MultiplicationError(ValueError):
    """Raised when operands would overflow the plaintext space."""


def secure_multiplication(receiver: Party, x: int, masker: Party, y: int,
                          mask: int, keypair: PaillierKeyPair, *,
                          label: str = "mult",
                          faithful_shared_r: bool = False,
                          receiver_pool: RandomnessPool | None = None,
                          masker_pool: RandomnessPool | None = None) -> int:
    """Run Algorithm 2; returns ``x*y + mask`` as learned by ``receiver``.

    Args:
        receiver: Algorithm 2's Alice -- holds ``x``, owns ``keypair``,
            obtains the result.
        x: receiver's private operand (signed).
        masker: Algorithm 2's Bob -- holds ``y`` and ``mask``.
        y: masker's private operand (signed).
        mask: masker's private mask ``v`` (signed).
        keypair: receiver's Paillier keys; public half already known to
            the masker (the session sends it once).
        label: transcript label prefix.
        faithful_shared_r: reproduce the paper's shared-randomness step
            literally (see module docstring).  This mode encrypts under
            an explicitly agreed ``r``, so pools never apply to it.
        receiver_pool / masker_pool: optional pregenerated randomness
            for the default mode's encryptions under the receiver's key.
    """
    public = keypair.public_key
    encoder = SignedEncoder(public.n)
    # The result x*y + mask must also fit the signed range; validate the
    # inputs' worst case up front so failures point at the real cause.
    if abs(x) * abs(y) + abs(mask) > encoder.half_range:
        raise MultiplicationError(
            f"|x*y + mask| can reach {abs(x) * abs(y) + abs(mask)}, beyond "
            f"the +/-{encoder.half_range} plaintext capacity; use larger keys"
        )

    # --- Steps 1-3 (receiver): send E(x) [, r]. ---------------------------
    if faithful_shared_r:
        shared_r = public.random_unit(receiver.rng)
        ciphertext = public.raw_encrypt(encoder.encode(x), shared_r)
        receiver.send(f"{label}/encrypted_x", ciphertext)
        receiver.send(f"{label}/shared_r", shared_r)
    else:
        ciphertext = public.encrypt(encoder.encode(x), receiver.rng,
                                    receiver_pool).value
        receiver.send(f"{label}/encrypted_x", ciphertext)

    # --- Steps 4-6 (masker): u' = E(x)^y * E(v). --------------------------
    received = PaillierCiphertext(public, masker.receive(f"{label}/encrypted_x"))
    if faithful_shared_r:
        r_value = masker.receive(f"{label}/shared_r")
        masked_value = (
            cached_pow(received.value, encoder.encode(y), public.n_squared)
            * public.raw_encrypt(encoder.encode(mask), r_value)
        ) % public.n_squared
        masker.send(f"{label}/masked_product", masked_value)
    else:
        product = received * encoder.encode(y)
        masked = product + public.encrypt(encoder.encode(mask),
                                          masker.rng, masker_pool)
        masker.send(f"{label}/masked_product",
                    masked.rerandomize(masker.rng, masker_pool).value)

    # --- Step 7 (receiver): decrypt. ---------------------------------------
    # decrypt_or_discard: when the receiver is remote in this process
    # (sealed key, mirrored runtime) the true plaintext exists only in
    # the owner's process; the placeholder feeds frames the mirror
    # discards.
    result_cipher = PaillierCiphertext(
        public, receiver.receive(f"{label}/masked_product"))
    return encoder.decode(
        decrypt_or_discard(keypair.private_key, result_cipher))
