"""Secure multi-party computation protocols (paper Sections 3.8 and 4.1).

The building blocks the DBSCAN protocols are composed from:

- :mod:`repro.smc.millionaires` -- Yao's Millionaires' Problem Protocol,
  Algorithm 1, implemented literally over textbook RSA.
- :mod:`repro.smc.bitwise_comparison` -- a DGK-style bitwise comparison
  used as the large-domain comparison backend (see DESIGN.md,
  Substitutions).
- :mod:`repro.smc.comparison` -- the backend abstraction gluing both (plus
  an ideal-functionality oracle) behind one ``a <= b`` interface.
- :mod:`repro.smc.multiplication` -- the paper's Multiplication Protocol
  (Algorithm 2) on Paillier.
- :mod:`repro.smc.scalar_product` -- the batched vector form used by HDP
  and the Section 5 distance sharing.
- :mod:`repro.smc.secret_sharing` -- additive two-party shares.
- :mod:`repro.smc.kth_smallest` -- secure selection of the k-th smallest
  shared distance (Section 5), scan and quickselect variants.
- :mod:`repro.smc.session` -- per-run session bundling keys, config, and
  the channel so higher layers call one object.
"""

from repro.smc.comparison import (
    BitwiseComparison,
    ComparisonOutcome,
    OracleComparison,
    SecureComparison,
    YaoMillionairesComparison,
    make_comparison_backend,
)
from repro.smc.session import CryptoContext, SmcConfig, SmcSession

__all__ = [
    "BitwiseComparison",
    "ComparisonOutcome",
    "OracleComparison",
    "SecureComparison",
    "YaoMillionairesComparison",
    "make_comparison_backend",
    "CryptoContext",
    "SmcConfig",
    "SmcSession",
]
