"""Random permutations for unlinkable region queries.

Algorithm 4's ``SetOfPointsOfBobPermutation`` is the privacy mechanism
that defeats the Figure 1 intersection attack: Bob presents his points in
a fresh random order for *every* region query, so the querying party can
never link "a hit at position 3" across two queries.  Fisher-Yates,
driven by the owning party's private RNG.
"""

from __future__ import annotations

import random
from dataclasses import dataclass


def random_permutation(size: int, rng: random.Random) -> list[int]:
    """A fresh uniform permutation of ``range(size)`` (Fisher-Yates)."""
    order = list(range(size))
    for position in range(size - 1, 0, -1):
        other = rng.randint(0, position)
        order[position], order[other] = order[other], order[position]
    return order


@dataclass(frozen=True)
class PermutedView:
    """A one-query view of a party's points in permuted order.

    ``order[k]`` is the true index shown at permuted position ``k``; only
    the owning party ever holds this mapping.
    """

    order: tuple[int, ...]

    @classmethod
    def fresh(cls, size: int, rng: random.Random) -> "PermutedView":
        return cls(order=tuple(random_permutation(size, rng)))

    def __len__(self) -> int:
        return len(self.order)

    def true_index(self, permuted_position: int) -> int:
        return self.order[permuted_position]
