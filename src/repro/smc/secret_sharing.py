"""Additive two-party secret shares (the Section 5 representation).

After the enhanced protocol's distance-sharing phase, each squared
distance ``d_i`` exists only as the pair ``(u_i, v_i)`` with
``d_i = u_i - v_i``: the *driving* party (the paper's Alice during her
pass) holds all ``u_i``, the peer holds all ``v_i``.
:class:`SharedValues` groups the two sides and provides the derived
public intervals the selection protocol compares over, keeping the "who
holds what" bookkeeping out of the selection logic.  Field names follow
the paper's ``u``/``v`` notation because either real party can play
either role.
"""

from __future__ import annotations

import random
from dataclasses import dataclass


class SecretSharingError(ValueError):
    """Raised on mismatched share vectors."""


def share_additively(value: int, rng: random.Random,
                     mask_bound: int) -> tuple[int, int]:
    """Split ``value`` into ``(u, v)`` with ``u - v = value``.

    ``v`` is drawn uniformly from ``[0, mask_bound)``; the bound is the
    statistical-hiding parameter (the paper just says "a random number").
    """
    if mask_bound < 1:
        raise SecretSharingError(f"mask_bound must be >= 1, got {mask_bound}")
    v = rng.randrange(mask_bound)
    return value + v, v


@dataclass(frozen=True)
class SharedValues:
    """Vectors of additive shares: ``values[i] = u_values[i] - v_values[i]``.

    ``value_bound`` is the public bound on the hidden values (squared
    distances); ``mask_bound`` is the public bound the masks were drawn
    under.  Both are needed to size the comparison domains.
    """

    u_values: tuple[int, ...]
    v_values: tuple[int, ...]
    value_bound: int
    mask_bound: int

    def __post_init__(self):
        if len(self.u_values) != len(self.v_values):
            raise SecretSharingError(
                f"share vectors differ in length: {len(self.u_values)} "
                f"vs {len(self.v_values)}"
            )

    def __len__(self) -> int:
        return len(self.u_values)

    def reconstruct(self, index: int) -> int:
        """Open one share -- test/verification use only."""
        return self.u_values[index] - self.v_values[index]

    def difference_interval(self) -> tuple[int, int]:
        """Public interval containing ``u_i - u_j`` and ``v_i - v_j``.

        ``u_i = d_i + v_i`` with ``d_i`` in ``[0, value_bound]`` and
        ``v_i`` in ``[0, mask_bound)``, so pairwise differences of either
        side lie in ``[-(value_bound + mask_bound), value_bound + mask_bound]``.
        """
        spread = self.value_bound + self.mask_bound
        return -spread, spread

    def threshold_interval(self, threshold: int) -> tuple[int, int]:
        """Public interval for the final ``u_i - threshold`` vs ``v_i`` test."""
        lo = min(-threshold, 0)
        hi = max(self.value_bound + self.mask_bound, self.mask_bound)
        return lo, hi
