"""Per-run SMC session: keys, configuration, and protocol entry points.

A :class:`SmcSession` is created once per distributed-DBSCAN run.  It

- generates (or deterministically caches) each party's Paillier and RSA
  key material,
- performs the one-time public-key exchange over the channel so key
  bytes are charged to the communication accounting exactly once,
- exposes the protocol primitives (comparison, multiplication, scalar
  products, k-th smallest) with party lookup by name, so the DBSCAN
  layers never touch raw key objects.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.crypto.keycache import cached_paillier_keypair, cached_rsa_keypair
from repro.crypto.paillier import PaillierKeyPair, generate_paillier_keypair
from repro.crypto.rsa import RsaKeyPair, generate_rsa_keypair
from repro.net.party import Party
from repro.smc.comparison import (
    ComparisonOutcome,
    SecureComparison,
    make_comparison_backend,
)
from repro.smc.kth_smallest import kth_smallest_quickselect, kth_smallest_scan
from repro.smc.multiplication import secure_multiplication
from repro.smc.scalar_product import (
    secure_masked_dot_terms,
    secure_scalar_products,
)
from repro.smc.secret_sharing import SharedValues


class SessionError(ValueError):
    """Raised on unknown parties or misconfiguration."""


@dataclass(frozen=True)
class SmcConfig:
    """Tunables for the cryptographic layer.

    Attributes:
        paillier_bits: Paillier modulus size; 256 is comfortable for
            tests, 512+ realistic for benchmarks.
        rsa_bits: RSA modulus for YMPP (only generated when the ympp
            backend is selected).
        comparison: ``"bitwise"`` (default), ``"ympp"``, or ``"oracle"``.
        mask_sigma: statistical-hiding parameter; masks are drawn from
            ``[0, value_bound * 2^mask_sigma)``.
        faithful_shared_r: reproduce Algorithm 2's shared-randomness step
            literally (leakage demonstration only).
        key_seed: when set, key material is derived deterministically
            from this seed (and memoized) -- reproducible tests and
            benchmarks that should not pay key-generation time.
    """

    paillier_bits: int = 256
    rsa_bits: int = 512
    comparison: str = "bitwise"
    mask_sigma: int = 16
    faithful_shared_r: bool = False
    key_seed: int | None = None

    def mask_bound(self, value_bound: int) -> int:
        """Mask interval size for hiding values bounded by ``value_bound``."""
        return max(2, value_bound) << self.mask_sigma


@dataclass
class CryptoContext:
    """One party's key material."""

    paillier: PaillierKeyPair
    rsa: RsaKeyPair | None = None


@dataclass
class SmcSession:
    """Protocol session between two parties over one channel.

    ``preset_contexts`` lets callers inject pre-generated key material --
    the multi-party mesh reuses one keypair per physical party across all
    of its pairwise sessions.
    """

    alice: Party
    bob: Party
    config: SmcConfig = field(default_factory=SmcConfig)
    preset_contexts: dict | None = None

    def __post_init__(self):
        if self.alice.name == self.bob.name:
            raise SessionError("parties must have distinct names")
        preset = self.preset_contexts or {}
        self._contexts = {
            self.alice.name: preset.get(self.alice.name) or
            self._make_context(self.alice, slot=0),
            self.bob.name: preset.get(self.bob.name) or
            self._make_context(self.bob, slot=1),
        }
        self._exchange_public_keys()
        alice_ctx = self._contexts[self.alice.name]
        bob_ctx = self._contexts[self.bob.name]
        self.comparison_backend: SecureComparison = make_comparison_backend(
            self.config.comparison,
            alice_rsa=alice_ctx.rsa, bob_rsa=bob_ctx.rsa,
            alice_paillier=alice_ctx.paillier, bob_paillier=bob_ctx.paillier,
        )

    # -- key management ----------------------------------------------------

    def _make_context(self, party: Party, slot: int) -> CryptoContext:
        cfg = self.config
        needs_rsa = cfg.comparison == "ympp"
        if cfg.key_seed is not None:
            paillier = cached_paillier_keypair(cfg.paillier_bits,
                                               2 * cfg.key_seed + slot)
            rsa = (cached_rsa_keypair(cfg.rsa_bits, 2 * cfg.key_seed + slot)
                   if needs_rsa else None)
        else:
            paillier = generate_paillier_keypair(cfg.paillier_bits, party.rng)
            rsa = (generate_rsa_keypair(cfg.rsa_bits, party.rng)
                   if needs_rsa else None)
        return CryptoContext(paillier=paillier, rsa=rsa)

    def _exchange_public_keys(self) -> None:
        """Send each party's public keys to the peer, once, accounted."""
        for party, peer in ((self.alice, self.bob), (self.bob, self.alice)):
            context = self._contexts[party.name]
            public = context.paillier.public_key
            party.send("keys/paillier_pub", [public.n, public.g])
            peer.receive("keys/paillier_pub")
            if context.rsa is not None:
                party.send("keys/rsa_pub",
                           [context.rsa.public_key.n, context.rsa.public_key.e])
                peer.receive("keys/rsa_pub")

    def party(self, name: str) -> Party:
        if name == self.alice.name:
            return self.alice
        if name == self.bob.name:
            return self.bob
        raise SessionError(f"unknown party {name!r}")

    def peer_of(self, name: str) -> Party:
        return self.bob if name == self.alice.name else self.alice

    def paillier_keys(self, name: str) -> PaillierKeyPair:
        return self._contexts[self.party(name).name].paillier

    # -- protocol entry points ----------------------------------------------

    def compare_leq(self, a_party: Party, a: int, b_party: Party, b: int, *,
                    lo: int, hi: int, reveal_to: str = "both",
                    label: str = "cmp") -> ComparisonOutcome:
        """Secure ``a <= b`` through the configured backend."""
        return self.comparison_backend.leq(
            a_party, a, b_party, b, lo=lo, hi=hi, reveal_to=reveal_to,
            label=label)

    def multiplication(self, receiver: Party, x: int, masker: Party, y: int,
                       mask: int, *, label: str = "mult") -> int:
        """Algorithm 2: receiver learns ``x*y + mask``."""
        return secure_multiplication(
            receiver, x, masker, y, mask,
            self.paillier_keys(receiver.name), label=label,
            faithful_shared_r=self.config.faithful_shared_r)

    def masked_dot_terms(self, receiver: Party, x_vector: list[int],
                         masker: Party, y_vector: list[int],
                         masks: list[int], *,
                         label: str = "dot") -> list[int]:
        """HDP inner loop: receiver learns each ``x_t*y_t + r_t``."""
        return secure_masked_dot_terms(
            receiver, x_vector, masker, y_vector, masks,
            self.paillier_keys(receiver.name), label=label)

    def scalar_products(self, receiver: Party, alpha: list[int],
                        masker: Party, betas: list[list[int]],
                        masks: list[int], *,
                        label: str = "sprod") -> list[int]:
        """Section 5 batched sharing: receiver learns ``<alpha, b_i> + v_i``."""
        return secure_scalar_products(
            receiver, alpha, masker, betas, masks,
            self.paillier_keys(receiver.name), label=label)

    def kth_smallest(self, u_party: Party, v_party: Party,
                     shares: SharedValues, k: int, *,
                     method: str = "scan",
                     label: str = "kselect") -> int:
        """Section 5 selection; ``method`` is ``"scan"`` or ``"quickselect"``."""
        if method == "scan":
            return kth_smallest_scan(
                self.comparison_backend, u_party, v_party, shares, k,
                label=label)
        if method == "quickselect":
            return kth_smallest_quickselect(
                self.comparison_backend, u_party, v_party, shares, k,
                label=label)
        raise SessionError(f"unknown selection method {method!r}")
