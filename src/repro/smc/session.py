"""Per-run SMC session: keys, configuration, and protocol entry points.

A :class:`SmcSession` is created once per distributed-DBSCAN run.  It

- generates (or deterministically caches) each party's Paillier and RSA
  key material,
- performs the one-time public-key exchange over the channel so key
  bytes are charged to the communication accounting exactly once,
- exposes the protocol primitives (comparison, multiplication, scalar
  products, k-th smallest) with party lookup by name, so the DBSCAN
  layers never touch raw key objects.
"""

from __future__ import annotations

import hmac
import random
from dataclasses import dataclass, field

from repro.crypto.engine import ModexpEngine, default_engine
from repro.crypto.keycache import cached_paillier_keypair, cached_rsa_keypair
from repro.crypto.paillier import (
    PaillierKeyPair,
    PaillierPublicKey,
    generate_paillier_keypair,
)
from repro.crypto.precompute import RandomnessPool
from repro.crypto.rsa import RsaKeyPair, generate_rsa_keypair
from repro.crypto.sealed import (
    is_sealed,
    paillier_public_digest,
    seal_paillier_keypair,
)
from repro.net.channel import Channel
from repro.net.party import Party
from repro.net.transport import TransportSpec
from repro.smc.comparison import (
    ComparisonOutcome,
    SecureComparison,
    make_comparison_backend,
)
from repro.smc.kth_smallest import kth_smallest_quickselect, kth_smallest_scan
from repro.smc.multiplication import secure_multiplication
from repro.smc.scalar_product import (
    secure_masked_dot_terms,
    secure_masked_dot_terms_batch,
    secure_scalar_products,
)
from repro.smc.secret_sharing import SharedValues


class SessionError(ValueError):
    """Raised on unknown parties or misconfiguration."""


@dataclass(frozen=True)
class SmcConfig:
    """Tunables for the cryptographic layer.

    Attributes:
        paillier_bits: Paillier modulus size; 256 is comfortable for
            tests, 512+ realistic for benchmarks.
        rsa_bits: RSA modulus for YMPP (only generated when the ympp
            backend is selected).
        comparison: ``"bitwise"`` (default), ``"ympp"``, or ``"oracle"``.
        mask_sigma: statistical-hiding parameter; masks are drawn from
            ``[0, value_bound * 2^mask_sigma)``.
        faithful_shared_r: reproduce Algorithm 2's shared-randomness step
            literally (leakage demonstration only).
        key_seed: when set, key material is derived deterministically
            from this seed (and memoized) -- reproducible tests and
            benchmarks that should not pay key-generation time.
        precompute: enable per-(actor, key) randomness pools (the
            offline/online split).  Pools change only *when* the
            ``r^n mod n^2`` powmods happen -- never the protocol
            semantics or disclosures; empty pools generate on demand.
            Call :meth:`SmcSession.precompute_pools` to move that work
            into an offline phase.  Off = seed-era behaviour, useful for
            ablations.
        engine: a :class:`~repro.crypto.engine.ModexpEngine` executing
            the crypto layer's bulk modexp work (pool refills, batch
            encrypt/decrypt, DGK bit batches).  ``None`` uses the shared
            serial engine -- identical results, one process.  Supply
            ``ModexpEngine(workers=k)`` to shard those jobs across
            ``k`` worker processes.
        transport: a :class:`~repro.net.transport.TransportSpec`
            choosing the delivery fabric for every channel built for
            this config (``None`` = seed-era in-process deques).  Each
            link gets its own fabric instance via
            :func:`channel_for_config`; the fabric changes *where*
            messages queue and what wall-clock they are charged, never
            the message sequence itself (property-tested in
            ``tests/net`` and ``tests/multiparty``).
    """

    paillier_bits: int = 256
    rsa_bits: int = 512
    comparison: str = "bitwise"
    mask_sigma: int = 16
    faithful_shared_r: bool = False
    key_seed: int | None = None
    precompute: bool = True
    engine: ModexpEngine | None = None
    transport: TransportSpec | None = None

    def mask_bound(self, value_bound: int) -> int:
        """Mask interval size for hiding values bounded by ``value_bound``."""
        return max(2, value_bound) << self.mask_sigma


def channel_for_config(config: SmcConfig, left_name: str = "alice",
                       right_name: str = "bob") -> Channel:
    """Build one link's channel on the fabric the config selects.

    Every caller that used to write ``Channel()`` goes through here so a
    single ``SmcConfig(transport=...)`` switches the whole run -- the
    two-party protocols and each pairwise link of the k-party mesh --
    onto threaded queues or the simulated network.
    """
    transport = (config.transport.create(left_name, right_name)
                 if config.transport is not None else None)
    return Channel(left_name=left_name, right_name=right_name,
                   transport=transport)


@dataclass
class CryptoContext:
    """One party's key material.

    ``expected_digest`` is set on sealed peer contexts: the manifest's
    pinned public-key digest that the wire-announced key must match
    before the session trusts it (``None`` skips the pin -- legacy
    manifests without ``key_digests``).
    """

    paillier: PaillierKeyPair
    rsa: RsaKeyPair | None = None
    expected_digest: str | None = None


def sealed_peer_context(owner: str,
                        expected_digest: str | None = None) -> CryptoContext:
    """Key context for a party that is *remote* in this process.

    Holds a sealed keypair with a placeholder public key until the
    session's key exchange captures the owner's authentic public key
    from the wire (the mirrored choreography discards the placeholder
    send unserialized, so the placeholder never reaches any peer).
    The private half never exists here at all.
    """
    placeholder = PaillierPublicKey(n=0, g=0)
    return CryptoContext(paillier=seal_paillier_keypair(placeholder, owner),
                         expected_digest=expected_digest)


class FullKeyProvider:
    """Key provider of the in-process trust model: every party's full
    keypair exists in this interpreter.

    ``key_seed_stride`` preserves the historical per-surface seed
    layout (the mesh derives slot keys at ``100 * key_seed + slot``),
    so providers and the legacy inline derivation produce bit-identical
    keys.
    """

    def __init__(self, config: SmcConfig, *, key_seed_stride: int = 100):
        self.config = config
        self.key_seed_stride = key_seed_stride

    def context_for(self, name: str, slot: int,
                    rng: random.Random | None = None) -> CryptoContext:
        cfg = self.config
        needs_rsa = cfg.comparison == "ympp"
        if cfg.key_seed is not None:
            seed = self.key_seed_stride * cfg.key_seed + slot
            paillier = cached_paillier_keypair(cfg.paillier_bits, seed)
            rsa = (cached_rsa_keypair(cfg.rsa_bits, seed)
                   if needs_rsa else None)
        else:
            if rng is None:
                raise SessionError(
                    f"key generation for {name!r} needs an RNG when "
                    f"key_seed is unset")
            paillier = generate_paillier_keypair(cfg.paillier_bits, rng)
            rsa = (generate_rsa_keypair(cfg.rsa_bits, rng)
                   if needs_rsa else None)
        return CryptoContext(paillier=paillier, rsa=rsa)


class SealedKeyProvider:
    """Key provider of the distributed trust model: this process derives
    only ``own_name``'s keypair; every peer gets a sealed public-only
    context, pinned to the manifest's per-party public-key digest and
    completed from the authentic wire announcement at session start.
    """

    def __init__(self, config: SmcConfig, own_name: str,
                 key_digests: dict[str, str] | None = None, *,
                 key_seed_stride: int = 100):
        self.config = config
        self.own_name = own_name
        self.key_digests = dict(key_digests or {})

        self._own_provider = FullKeyProvider(
            config, key_seed_stride=key_seed_stride)

    def context_for(self, name: str, slot: int,
                    rng: random.Random | None = None) -> CryptoContext:
        if name != self.own_name:
            return sealed_peer_context(name, self.key_digests.get(name))
        return self._own_provider.context_for(name, slot, rng)


@dataclass
class SmcSession:
    """Protocol session between two parties over one channel.

    ``preset_contexts`` lets callers inject pre-generated key material --
    the multi-party mesh reuses one keypair per physical party across all
    of its pairwise sessions.
    """

    alice: Party
    bob: Party
    config: SmcConfig = field(default_factory=SmcConfig)
    preset_contexts: dict | None = None

    def __post_init__(self):
        if self.alice.name == self.bob.name:
            raise SessionError("parties must have distinct names")
        preset = self.preset_contexts or {}
        self._contexts = {
            self.alice.name: preset.get(self.alice.name) or
            self._make_context(self.alice, slot=0),
            self.bob.name: preset.get(self.bob.name) or
            self._make_context(self.bob, slot=1),
        }
        self._exchange_public_keys()
        # Every (actor, key_owner) pool is created eagerly, in fixed
        # order, each with its own RNG stream *forked* from the actor's
        # protocol RNG at this pinned point.  The fork is what makes
        # pool refills timing-invariant: a pool filled in the
        # background (the daemon's RandomnessService), filled up front,
        # or filled on demand produces the same factor sequence,
        # because pool draws no longer interleave with the party's
        # protocol coin draws.  Pooling therefore only reorders work in
        # time -- the bit-identity contract across runtimes holds
        # whatever the refill schedule.
        self._pools: dict[tuple[str, str], RandomnessPool] = {}
        if self.config.precompute:
            for actor in (self.alice, self.bob):
                for owner in (self.alice, self.bob):
                    self._pools[(actor.name, owner.name)] = RandomnessPool(
                        self._contexts[owner.name].paillier.public_key,
                        random.Random(actor.rng.getrandbits(128)))
        self.engine: ModexpEngine = self.config.engine or default_engine()
        alice_ctx = self._contexts[self.alice.name]
        bob_ctx = self._contexts[self.bob.name]
        rsa_keys = ({self.alice.name: alice_ctx.rsa,
                     self.bob.name: bob_ctx.rsa}
                    if alice_ctx.rsa is not None and bob_ctx.rsa is not None
                    else None)
        self.comparison_backend: SecureComparison = make_comparison_backend(
            self.config.comparison,
            rsa_keys=rsa_keys,
            paillier_keys={self.alice.name: alice_ctx.paillier,
                           self.bob.name: bob_ctx.paillier},
            pool_lookup=self.pool,
            engine=self.engine,
        )

    # -- key management ----------------------------------------------------

    def _make_context(self, party: Party, slot: int) -> CryptoContext:
        cfg = self.config
        needs_rsa = cfg.comparison == "ympp"
        if cfg.key_seed is not None:
            paillier = cached_paillier_keypair(cfg.paillier_bits,
                                               2 * cfg.key_seed + slot)
            rsa = (cached_rsa_keypair(cfg.rsa_bits, 2 * cfg.key_seed + slot)
                   if needs_rsa else None)
        else:
            paillier = generate_paillier_keypair(cfg.paillier_bits, party.rng)
            rsa = (generate_rsa_keypair(cfg.rsa_bits, party.rng)
                   if needs_rsa else None)
        return CryptoContext(paillier=paillier, rsa=rsa)

    def _exchange_public_keys(self) -> None:
        """Send each party's public keys to the peer, once, accounted.

        For a sealed peer context (mirrored runtime) the locally-held
        placeholder send is discarded by the mirror and the *receive*
        returns the owner's authentic announcement from the wire; the
        sealed context adopts that public key after cross-checking it
        against the manifest's pinned digest.
        """
        for party, peer in ((self.alice, self.bob), (self.bob, self.alice)):
            context = self._contexts[party.name]
            public = context.paillier.public_key
            party.send("keys/paillier_pub", [public.n, public.g])
            announced = peer.receive("keys/paillier_pub")
            if is_sealed(context.paillier.private_key):
                self._adopt_peer_public(party.name, context, announced)
            if context.rsa is not None:
                party.send("keys/rsa_pub",
                           [context.rsa.public_key.n, context.rsa.public_key.e])
                peer.receive("keys/rsa_pub")

    @staticmethod
    def _adopt_peer_public(owner: str, context: CryptoContext,
                           announced) -> None:
        if (not isinstance(announced, list) or len(announced) != 2
                or not all(isinstance(part, int) and part > 0
                           for part in announced)):
            raise SessionError(
                f"malformed public-key announcement from {owner!r}: "
                f"expected [n, g], got {type(announced).__name__}")
        public = PaillierPublicKey(n=announced[0], g=announced[1])
        if context.expected_digest is not None:
            digest = paillier_public_digest(public)
            if not hmac.compare_digest(digest, context.expected_digest):
                raise SessionError(
                    f"public key announced by {owner!r} does not match "
                    f"the manifest's pinned digest ({digest[:12]}... vs "
                    f"{context.expected_digest[:12]}...); refusing the "
                    f"session")
        context.paillier = seal_paillier_keypair(public, owner)

    def party(self, name: str) -> Party:
        if name == self.alice.name:
            return self.alice
        if name == self.bob.name:
            return self.bob
        raise SessionError(f"unknown party {name!r}")

    def peer_of(self, name: str) -> Party:
        return self.bob if name == self.alice.name else self.alice

    def paillier_keys(self, name: str) -> PaillierKeyPair:
        return self._contexts[self.party(name).name].paillier

    # -- randomness pools (offline/online split) ----------------------------

    def pool(self, actor: "Party | str",
             key_owner: "Party | str") -> RandomnessPool | None:
        """Randomness pool for ``actor`` encrypting under ``key_owner``'s key.

        Pools are keyed by both coordinates because each party draws its
        encryption randomness from its *own* forked pool stream, but may
        encrypt under either Paillier key (e.g. DGK blinding happens
        under the key holder's key).  All four pools exist from session
        construction (see ``__post_init__``); ``None`` when
        ``precompute`` is disabled, which every pooled primitive treats
        as "generate fresh".
        """
        if not self.config.precompute:
            return None
        actor_name = actor if isinstance(actor, str) else actor.name
        owner_name = key_owner if isinstance(key_owner, str) else key_owner.name
        return self._pools[(self.party(actor_name).name,
                            self.party(owner_name).name)]

    def precompute_pools(self, factors: "int | dict") -> None:
        """Offline phase: pregenerate encryption/rerandomization factors.

        ``factors`` is either one count applied to every (actor, key)
        combination or a ``{(actor, key_owner): count}`` plan -- e.g. the
        consumption a probe run reported via :meth:`pool_report`.  The
        refills run through the session's engine, so a multi-worker
        engine shards this offline phase across processes.
        """
        if not self.config.precompute:
            raise SessionError(
                "precompute_pools requires SmcConfig(precompute=True)")
        names = (self.alice.name, self.bob.name)
        if isinstance(factors, int):
            plan = {(actor, owner): factors
                    for actor in names for owner in names}
        else:
            plan = factors
        for (actor, owner), count in plan.items():
            if count > 0:
                self.engine.fill_pool(self.pool(actor, owner), count)

    def pool_report(self) -> dict[tuple[str, str], dict[str, int]]:
        """Per-pool accounting: pregenerated/consumed/misses/available."""
        return {key: pool.report()
                for key, pool in sorted(self._pools.items())}

    def pools(self) -> dict[tuple[str, str], RandomnessPool]:
        """The live pool objects, keyed ``(actor, key_owner)`` in fixed
        creation order -- what the daemon's randomness service registers
        under a session lease."""
        return dict(self._pools)

    # -- protocol entry points ----------------------------------------------

    def compare_leq(self, a_party: Party, a: int, b_party: Party, b: int, *,
                    lo: int, hi: int, reveal_to: str = "both",
                    label: str = "cmp") -> ComparisonOutcome:
        """Secure ``a <= b`` through the configured backend."""
        return self.comparison_backend.leq(
            a_party, a, b_party, b, lo=lo, hi=hi, reveal_to=reveal_to,
            label=label)

    def compare_leq_batch(self, a_party: Party, a_values: list[int],
                          b_party: Party, b_values: list[int], *,
                          lo: int, hi: int, reveal_to: str = "both",
                          amortize: bool = False,
                          label: str = "cmp") -> list[ComparisonOutcome]:
        """Batched ``a_i <= b_i``: one invocation per pair.  With
        ``amortize`` the caller declares the learning party's side
        constant (public protocol structure), letting the backend share
        one bit-encryption and round-trip across the whole batch -- see
        :meth:`SecureComparison.leq_batch`."""
        return self.comparison_backend.leq_batch(
            a_party, a_values, b_party, b_values, lo=lo, hi=hi,
            reveal_to=reveal_to, amortize=amortize, label=label)

    def multiplication(self, receiver: Party, x: int, masker: Party, y: int,
                       mask: int, *, label: str = "mult") -> int:
        """Algorithm 2: receiver learns ``x*y + mask``."""
        return secure_multiplication(
            receiver, x, masker, y, mask,
            self.paillier_keys(receiver.name), label=label,
            faithful_shared_r=self.config.faithful_shared_r,
            receiver_pool=self.pool(receiver, receiver),
            masker_pool=self.pool(masker, receiver))

    def masked_dot_terms(self, receiver: Party, x_vector: list[int],
                         masker: Party, y_vector: list[int],
                         masks: list[int], *,
                         label: str = "dot") -> list[int]:
        """HDP inner loop: receiver learns each ``x_t*y_t + r_t``."""
        return secure_masked_dot_terms(
            receiver, x_vector, masker, y_vector, masks,
            self.paillier_keys(receiver.name), label=label,
            receiver_pool=self.pool(receiver, receiver),
            masker_pool=self.pool(masker, receiver),
            engine=self.engine)

    def masked_dot_terms_batch(self, holder: Party, alpha: list[int],
                               receiver: Party, betas: list[list[int]],
                               offsets: list[int], *, blind_bound: int,
                               label: str = "dotbatch") -> list[int]:
        """Batched region-query cross terms: receiver learns
        ``<alpha, beta_i> + offsets[i]`` with the holder's vector
        encrypted once for the whole batch."""
        return secure_masked_dot_terms_batch(
            holder, alpha, receiver, betas, offsets,
            self.paillier_keys(holder.name), blind_bound=blind_bound,
            label=label,
            holder_pool=self.pool(holder, holder),
            receiver_pool=self.pool(receiver, holder),
            engine=self.engine)

    def scalar_products(self, receiver: Party, alpha: list[int],
                        masker: Party, betas: list[list[int]],
                        masks: list[int], *,
                        label: str = "sprod") -> list[int]:
        """Section 5 batched sharing: receiver learns ``<alpha, b_i> + v_i``."""
        return secure_scalar_products(
            receiver, alpha, masker, betas, masks,
            self.paillier_keys(receiver.name), label=label,
            receiver_pool=self.pool(receiver, receiver),
            masker_pool=self.pool(masker, receiver),
            engine=self.engine)

    def kth_smallest(self, u_party: Party, v_party: Party,
                     shares: SharedValues, k: int, *,
                     method: str = "scan",
                     label: str = "kselect") -> int:
        """Section 5 selection; ``method`` is ``"scan"`` or ``"quickselect"``."""
        if method == "scan":
            return kth_smallest_scan(
                self.comparison_backend, u_party, v_party, shares, k,
                label=label)
        if method == "quickselect":
            return kth_smallest_quickselect(
                self.comparison_backend, u_party, v_party, shares, k,
                label=label)
        raise SessionError(f"unknown selection method {method!r}")
