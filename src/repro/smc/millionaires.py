"""Yao's Millionaires' Problem Protocol -- Algorithm 1, implemented literally.

Roles follow the paper exactly: the *i-holder* ("Alice" in Algorithm 1)
owns the RSA keypair; the *j-holder* ("Bob") learns whether ``i < j``
first and, in step 7, tells the i-holder.

Protocol recap (Algorithm 1):

1. Bob picks a random N-bit integer ``x`` and computes ``k = Ea(x)``.
2. Bob sends Alice ``k - j + 1``.
3. Alice computes ``y_u = Da(k - j + u)`` for ``u = 1..n0``.
4. Alice draws random primes ``p`` of ``N/2`` bits until all
   ``z_u = y_u mod p`` pairwise differ by at least 2 in the mod-p sense.
5. Alice sends ``p`` and ``z_1..z_i, z_{i+1}+1, ..., z_{n0}+1`` (mod p).
6. Bob inspects the j-th number: equal to ``x mod p`` means ``i >= j``,
   otherwise ``i < j``.
7. Bob tells Alice the conclusion.

Correctness hinges on ``y_j = Da(k - j + j) = Da(Ea(x)) = x``.
Communication is ``O(c2 * n0)`` bits per execution (one number out,
``n0 + 1`` numbers back, one conclusion bit) -- exactly the term the
paper's cost formulas charge per comparison.
"""

from __future__ import annotations

import random

from repro.crypto.engine import ModexpEngine, default_engine
from repro.crypto.primes import random_prime_in_range
from repro.crypto.rsa import RsaKeyPair, RsaPublicKey
from repro.net.party import Party

# Step 4 retries a fresh prime when residues collide; with p >= 8*n0 the
# per-draw failure probability is small, so this bound is generous.
_MAX_PRIME_RETRIES = 5000


class YmppError(ValueError):
    """Raised on domain violations or a failed prime search."""


def ympp_bit_parameter(n0: int) -> int:
    """The N of Algorithm 1: the bit size of Bob's random ``x``.

    ``p`` has ``N/2`` bits.  The step-4 separation check succeeds only
    when no two of the ``n0`` pseudorandom residues land within 2 of each
    other mod ``p`` -- a birthday bound, so ``p`` must comfortably exceed
    ``n0^2`` (we size ``p >= 64 * n0^2``, putting the per-draw collision
    probability around 3/64 and keeping the retry loop short).
    """
    return 2 * max(16, 2 * n0.bit_length() + 6)


def ympp_less_than(i_party: Party, i: int, j_party: Party, j: int,
                   n0: int, keypair: RsaKeyPair, *, announce: bool = True,
                   label: str = "ympp",
                   engine: ModexpEngine | None = None) -> bool:
    """Run Algorithm 1: decide ``i < j`` for ``i, j`` in ``[1, n0]``.

    Args:
        i_party: holder of ``i`` and of the RSA keypair (Algorithm 1's
            Alice).  Their ``rng`` drives the prime search.
        i: i_party's private value.
        j_party: holder of ``j`` (Algorithm 1's Bob); learns the result.
        j: j_party's private value.
        n0: public domain bound; both inputs must lie in ``[1, n0]``.
        keypair: i_party's RSA keypair.  The public half is assumed to be
            known to j_party already (the session sends it once).
        announce: when True, run step 7 so both parties hold the result.
        label: transcript label prefix.
        engine: optional :class:`~repro.crypto.engine.ModexpEngine`; the
            step-3 decryption sweep (``n0`` RSA powmods) runs as one
            sharded job batch through it.

    Returns:
        ``i < j``.  Semantically the value is known to j_party, and to
        i_party only if ``announce``.
    """
    if not 1 <= i <= n0:
        raise YmppError(f"i={i} outside domain [1, {n0}]")
    if not 1 <= j <= n0:
        raise YmppError(f"j={j} outside domain [1, {n0}]")
    modulus = keypair.public_key.n
    bit_parameter = ympp_bit_parameter(n0)
    if modulus.bit_length() <= bit_parameter:
        raise YmppError(
            f"RSA modulus ({modulus.bit_length()} bits) too small for "
            f"N={bit_parameter}; increase rsa_bits or decrease n0"
        )

    # --- Step 1 (j_party): random N-bit x, k = Ea(x). -------------------
    x = j_party.rng.getrandbits(bit_parameter)
    k = keypair.public_key.encrypt(x % modulus)

    # --- Step 2 (j_party -> i_party): k - j + 1. -------------------------
    j_party.send(f"{label}/step2_shifted_cipher", (k - j + 1) % modulus)

    # --- Step 3 (i_party): y_u = Da(k - j + u), u = 1..n0. ---------------
    shifted = i_party.receive(f"{label}/step2_shifted_cipher")
    y_values = (engine or default_engine()).modexp_batch(
        [((shifted + u - 1) % modulus, keypair.private_key.d, modulus)
         for u in range(1, n0 + 1)])

    # --- Step 4 (i_party): prime search with the mod-p separation check. -
    prime, residues = _search_separated_prime(
        y_values, bit_parameter, i_party.rng)

    # --- Step 5 (i_party -> j_party): p, then z_u (+1 past position i). --
    disclosed = [residues[u - 1] if u <= i else (residues[u - 1] + 1) % prime
                 for u in range(1, n0 + 1)]
    i_party.send(f"{label}/step5_prime", prime)
    i_party.send(f"{label}/step5_sequence", disclosed)

    # --- Step 6 (j_party): check the j-th number. -------------------------
    prime_received = j_party.receive(f"{label}/step5_prime")
    sequence = j_party.receive(f"{label}/step5_sequence")
    i_less_than_j = sequence[j - 1] != x % prime_received

    # --- Step 7 (j_party -> i_party): announce. ---------------------------
    if announce:
        j_party.send(f"{label}/step7_conclusion", i_less_than_j)
        return i_party.receive(f"{label}/step7_conclusion")
    return i_less_than_j


def _search_separated_prime(y_values: list[int], bit_parameter: int,
                            rng: random.Random) -> tuple[int, list[int]]:
    """Step 4: find ``p`` such that all ``y_u mod p`` differ by >= 2 mod p."""
    half_bits = bit_parameter // 2
    low = 1 << (half_bits - 1)
    high = 1 << half_bits
    for _ in range(_MAX_PRIME_RETRIES):
        prime = random_prime_in_range(low, high, rng)
        residues = [y % prime for y in y_values]
        if _pairwise_separated(residues, prime):
            return prime, residues
    raise YmppError(
        f"no prime of {half_bits} bits separated {len(y_values)} residues "
        f"after {_MAX_PRIME_RETRIES} attempts"
    )


def _pairwise_separated(residues: list[int], prime: int) -> bool:
    """All residues differ by at least 2 "in the mod p sense" (circular)."""
    ordered = sorted(residues)
    for left, right in zip(ordered, ordered[1:]):
        if right - left < 2:
            return False
    # Wrap-around gap between the largest and smallest residue.
    if len(ordered) >= 2 and (ordered[0] + prime) - ordered[-1] < 2:
        return False
    return True
