"""Batched masked scalar products over Paillier.

Three call shapes the DBSCAN protocols need:

- :func:`secure_masked_dot_terms` -- the HDP inner loop (Section 4.2):
  the receiver holds one vector, the masker holds another plus per-
  coordinate masks; the receiver obtains each ``x_t * y_t + r_t``
  separately (the paper runs one Multiplication Protocol per attribute).

- :func:`secure_masked_dot_terms_batch` -- the batched region-query
  form: the holder's vector ``alpha`` is encrypted **once** and reused
  against every ``beta_i``, so the holder's encryptions are
  ``O(len(alpha))`` per call regardless of ``len(betas)``; the receiver
  ends with ``<alpha, beta_i> + offsets[i]`` -- exactly the cross sum
  Protocol HDP hands the non-querying party, for a whole region query
  in one message round-trip.

- :func:`secure_scalar_products` -- the Section 5 distance sharing: the
  receiver's vector ``alpha`` is encrypted once, then for each of the
  masker's vectors ``beta_i`` the receiver obtains
  ``<alpha, beta_i> + v_i``.  This is the batched form of Algorithm 2
  that makes the enhanced protocol's ``u_i = dist^2 + v_i`` shares cost
  ``m + 2`` ciphertexts up front plus one per point.

All three accept optional :class:`~repro.crypto.precompute.RandomnessPool`
arguments -- one per (acting party, key) -- which move the ``r^n mod n^2``
powmods of encryption and rerandomization into an offline phase.
"""

from __future__ import annotations

from repro.crypto.encoding import SignedEncoder
from repro.crypto.engine import ModexpEngine, default_engine
from repro.crypto.paillier import PaillierCiphertext, PaillierKeyPair
from repro.crypto.precompute import RandomnessPool
from repro.net.party import Party


class ScalarProductError(ValueError):
    """Raised on shape mismatches or plaintext-space overflow."""


def secure_masked_dot_terms(receiver: Party, x_vector: list[int],
                            masker: Party, y_vector: list[int],
                            masks: list[int], keypair: PaillierKeyPair, *,
                            label: str = "dot",
                            receiver_pool: RandomnessPool | None = None,
                            masker_pool: RandomnessPool | None = None,
                            engine: ModexpEngine | None = None,
                            ) -> list[int]:
    """Per-coordinate Multiplication Protocol batch (HDP inner loop).

    The receiver learns ``[x_t * y_t + r_t for t]``; the masker learns
    nothing.  One message each way carries the whole batch.
    """
    if not len(x_vector) == len(y_vector) == len(masks):
        raise ScalarProductError(
            f"length mismatch: x={len(x_vector)} y={len(y_vector)} "
            f"masks={len(masks)}"
        )
    public = keypair.public_key
    encoder = SignedEncoder(public.n)
    engine = engine or default_engine()

    encrypted = [cipher.value for cipher in engine.encrypt_batch(
        public, [encoder.encode(x) for x in x_vector], receiver.rng,
        receiver_pool)]
    receiver.send(f"{label}/encrypted_vector", encrypted)

    received = masker.receive(f"{label}/encrypted_vector")
    replies = []
    for value, y, mask in zip(received, y_vector, masks):
        product = PaillierCiphertext(public, value) * encoder.encode(y)
        masked = product + public.encrypt(encoder.encode(mask), masker.rng,
                                          masker_pool)
        replies.append(masked.rerandomize(masker.rng, masker_pool).value)
    masker.send(f"{label}/masked_terms", replies)

    results = receiver.receive(f"{label}/masked_terms")
    return [encoder.decode(value)
            for value in engine.decrypt_raw_batch(keypair.private_key,
                                                  results)]


def secure_masked_dot_terms_batch(holder: Party, alpha: list[int],
                                  receiver: Party, betas: list[list[int]],
                                  offsets: list[int],
                                  keypair: PaillierKeyPair, *,
                                  blind_bound: int,
                                  label: str = "dotbatch",
                                  holder_pool: RandomnessPool | None = None,
                                  receiver_pool: RandomnessPool | None = None,
                                  engine: ModexpEngine | None = None,
                                  ) -> list[int]:
    """Batched region-query cross terms: receiver learns
    ``<alpha, beta_i> + offsets[i]`` for every ``beta_i``.

    The batched form of the HDP inner loop.  Flow (3 messages total):

    1. The holder (who owns ``keypair``) encrypts ``alpha`` once --
       ``len(alpha)`` ciphertexts, independent of ``len(betas)``.
    2. For each ``beta_i`` the receiver homomorphically accumulates
       ``E(<alpha, beta_i> + s_i)`` under the holder's key, with a
       private blind ``s_i`` drawn from ``[0, blind_bound]``, and
       returns the whole batch rerandomized.
    3. The holder decrypts, adds its per-``beta`` offset, and returns
       the sums; the receiver strips its blinds.

    The receiver ends with exactly the cross sum the per-point HDP
    produces (``<alpha, beta_i>`` when offsets are zero -- the paper's
    zero-sum-mask disclosure -- or offset-shifted in the blinded mode);
    the holder sees only blind-masked sums, statistically hidden by the
    same ``blind_bound`` sizing every other mask in the system uses.
    """
    if len(betas) != len(offsets):
        raise ScalarProductError(
            f"{len(betas)} beta vectors but {len(offsets)} offsets")
    for index, beta in enumerate(betas):
        if len(beta) != len(alpha):
            raise ScalarProductError(
                f"beta[{index}] has length {len(beta)}, alpha has "
                f"{len(alpha)}"
            )
    if blind_bound < 1:
        raise ScalarProductError(
            f"blind_bound must be >= 1, got {blind_bound}")
    public = keypair.public_key
    encoder = SignedEncoder(public.n)
    engine = engine or default_engine()

    encrypted_alpha = [cipher.value for cipher in engine.encrypt_batch(
        public, [encoder.encode(a) for a in alpha], holder.rng,
        holder_pool)]
    holder.send(f"{label}/encrypted_alpha", encrypted_alpha)

    received = [PaillierCiphertext(public, value)
                for value in receiver.receive(f"{label}/encrypted_alpha")]
    blinds = []
    replies = []
    for beta in betas:
        blind = receiver.rng.randrange(blind_bound + 1)
        blinds.append(blind)
        accumulator = public.encrypt(encoder.encode(blind), receiver.rng,
                                     receiver_pool)
        for cipher, coefficient in zip(received, beta):
            if coefficient:
                accumulator = accumulator + cipher * encoder.encode(coefficient)
        replies.append(accumulator.rerandomize(receiver.rng,
                                               receiver_pool).value)
    receiver.send(f"{label}/blinded_sums", replies)

    blinded = [encoder.decode(value) for value in
               engine.decrypt_raw_batch(
                   keypair.private_key,
                   holder.receive(f"{label}/blinded_sums"))]
    holder.send(f"{label}/cross_sums",
                [value + offset for value, offset in zip(blinded, offsets)])

    returned = receiver.receive(f"{label}/cross_sums")
    return [value - blind for value, blind in zip(returned, blinds)]


def secure_scalar_products(receiver: Party, alpha: list[int],
                           masker: Party, betas: list[list[int]],
                           masks: list[int], keypair: PaillierKeyPair, *,
                           label: str = "sprod",
                           receiver_pool: RandomnessPool | None = None,
                           masker_pool: RandomnessPool | None = None,
                           engine: ModexpEngine | None = None,
                           ) -> list[int]:
    """Section 5 batched sharing: receiver learns ``<alpha, beta_i> + v_i``.

    Args:
        receiver: holds ``alpha`` and the keypair; learns the masked
            products.
        alpha: receiver's vector (signed ints).
        masker: holds the ``beta_i`` vectors and the masks ``v_i``.
        betas: list of vectors, each the same length as ``alpha``.
        masks: one signed mask per beta vector.
        keypair: receiver's Paillier keys.
        receiver_pool / masker_pool: optional randomness pools for each
            party's encryptions under the receiver's key.
        engine: optional :class:`~repro.crypto.engine.ModexpEngine`
            executing the batch encryptions/decryptions as sharded jobs.
    """
    if len(betas) != len(masks):
        raise ScalarProductError(
            f"{len(betas)} beta vectors but {len(masks)} masks")
    for index, beta in enumerate(betas):
        if len(beta) != len(alpha):
            raise ScalarProductError(
                f"beta[{index}] has length {len(beta)}, alpha has "
                f"{len(alpha)}"
            )
    public = keypair.public_key
    encoder = SignedEncoder(public.n)
    engine = engine or default_engine()

    encrypted_alpha = [cipher.value for cipher in engine.encrypt_batch(
        public, [encoder.encode(a) for a in alpha], receiver.rng,
        receiver_pool)]
    receiver.send(f"{label}/encrypted_alpha", encrypted_alpha)

    received = [PaillierCiphertext(public, v)
                for v in masker.receive(f"{label}/encrypted_alpha")]
    # Masker-side powmods (mask encryption + rerandomization per beta,
    # the ``r^n`` halves) run as one sharded engine batch; the factors
    # come back in the serial interleaved draw order, so the produced
    # ciphertexts are bit-identical to the per-item loop.
    factors = engine.encryption_factors(public, 2 * len(betas), masker.rng,
                                        masker_pool)
    n_squared = public.n_squared
    replies = []
    for index, (beta, mask) in enumerate(zip(betas, masks)):
        accumulator = PaillierCiphertext(
            public, public.raw_encrypt_with_factor(encoder.encode(mask),
                                                   factors[2 * index]))
        for cipher, coefficient in zip(received, beta):
            if coefficient:
                accumulator = accumulator + cipher * encoder.encode(coefficient)
        # Rerandomize with the pre-drawn factor (a fresh zero encryption).
        replies.append((accumulator.value * factors[2 * index + 1])
                       % n_squared)
    masker.send(f"{label}/masked_products", replies)

    results = receiver.receive(f"{label}/masked_products")
    return [encoder.decode(value)
            for value in engine.decrypt_raw_batch(keypair.private_key,
                                                  results)]
