"""Batched masked scalar products over Paillier.

Two call shapes the DBSCAN protocols need:

- :func:`secure_masked_dot_terms` -- the HDP inner loop (Section 4.2):
  the receiver holds one vector, the masker holds another plus per-
  coordinate masks; the receiver obtains each ``x_t * y_t + r_t``
  separately (the paper runs one Multiplication Protocol per attribute).

- :func:`secure_scalar_products` -- the Section 5 distance sharing: the
  receiver's vector ``alpha`` is encrypted once, then for each of the
  masker's vectors ``beta_i`` the receiver obtains
  ``<alpha, beta_i> + v_i``.  This is the batched form of Algorithm 2
  that makes the enhanced protocol's ``u_i = dist^2 + v_i`` shares cost
  ``m + 2`` ciphertexts up front plus one per point.
"""

from __future__ import annotations

from repro.crypto.encoding import SignedEncoder
from repro.crypto.paillier import PaillierCiphertext, PaillierKeyPair
from repro.net.party import Party


class ScalarProductError(ValueError):
    """Raised on shape mismatches or plaintext-space overflow."""


def secure_masked_dot_terms(receiver: Party, x_vector: list[int],
                            masker: Party, y_vector: list[int],
                            masks: list[int], keypair: PaillierKeyPair, *,
                            label: str = "dot") -> list[int]:
    """Per-coordinate Multiplication Protocol batch (HDP inner loop).

    The receiver learns ``[x_t * y_t + r_t for t]``; the masker learns
    nothing.  One message each way carries the whole batch.
    """
    if not len(x_vector) == len(y_vector) == len(masks):
        raise ScalarProductError(
            f"length mismatch: x={len(x_vector)} y={len(y_vector)} "
            f"masks={len(masks)}"
        )
    public = keypair.public_key
    encoder = SignedEncoder(public.n)

    encrypted = [public.encrypt(encoder.encode(x), receiver.rng).value
                 for x in x_vector]
    receiver.send(f"{label}/encrypted_vector", encrypted)

    received = masker.receive(f"{label}/encrypted_vector")
    replies = []
    for value, y, mask in zip(received, y_vector, masks):
        product = PaillierCiphertext(public, value) * encoder.encode(y)
        masked = product + public.encrypt(encoder.encode(mask), masker.rng)
        replies.append(masked.rerandomize(masker.rng).value)
    masker.send(f"{label}/masked_terms", replies)

    results = receiver.receive(f"{label}/masked_terms")
    private = keypair.private_key
    return [encoder.decode(private.decrypt_raw(value)) for value in results]


def secure_scalar_products(receiver: Party, alpha: list[int],
                           masker: Party, betas: list[list[int]],
                           masks: list[int], keypair: PaillierKeyPair, *,
                           label: str = "sprod") -> list[int]:
    """Section 5 batched sharing: receiver learns ``<alpha, beta_i> + v_i``.

    Args:
        receiver: holds ``alpha`` and the keypair; learns the masked
            products.
        alpha: receiver's vector (signed ints).
        masker: holds the ``beta_i`` vectors and the masks ``v_i``.
        betas: list of vectors, each the same length as ``alpha``.
        masks: one signed mask per beta vector.
        keypair: receiver's Paillier keys.
    """
    if len(betas) != len(masks):
        raise ScalarProductError(
            f"{len(betas)} beta vectors but {len(masks)} masks")
    for index, beta in enumerate(betas):
        if len(beta) != len(alpha):
            raise ScalarProductError(
                f"beta[{index}] has length {len(beta)}, alpha has "
                f"{len(alpha)}"
            )
    public = keypair.public_key
    encoder = SignedEncoder(public.n)

    encrypted_alpha = [public.encrypt(encoder.encode(a), receiver.rng).value
                       for a in alpha]
    receiver.send(f"{label}/encrypted_alpha", encrypted_alpha)

    received = [PaillierCiphertext(public, v)
                for v in masker.receive(f"{label}/encrypted_alpha")]
    replies = []
    for beta, mask in zip(betas, masks):
        accumulator = public.encrypt(encoder.encode(mask), masker.rng)
        for cipher, coefficient in zip(received, beta):
            if coefficient:
                accumulator = accumulator + cipher * encoder.encode(coefficient)
        replies.append(accumulator.rerandomize(masker.rng).value)
    masker.send(f"{label}/masked_products", replies)

    results = receiver.receive(f"{label}/masked_products")
    private = keypair.private_key
    return [encoder.decode(private.decrypt_raw(value)) for value in results]
